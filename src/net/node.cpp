#include "net/node.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "chain/sha256.hpp"
#include "core/round_common.hpp"
#include "nn/checkpoint.hpp"
#include "obs/flight_recorder.hpp"
#include "util/logging.hpp"

namespace fifl::net {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Snapshot of the global net counters, for per-round deltas.
struct CounterSnapshot {
  std::uint64_t bytes_tx, bytes_rx, msgs_tx, msgs_rx, frame_errors;
  std::uint64_t late_uploads, send_retries, dropped_workers;
  std::array<std::uint64_t, kMessageTypeCount> tx_by_type;
  std::array<std::uint64_t, kMessageTypeCount> rx_by_type;

  static CounterSnapshot take() {
    NetMetrics& m = NetMetrics::global();
    CounterSnapshot s{};
    s.bytes_tx = m.bytes_tx->value();
    s.bytes_rx = m.bytes_rx->value();
    s.msgs_tx = m.msgs_tx->value();
    s.msgs_rx = m.msgs_rx->value();
    s.frame_errors = m.frame_errors->value();
    s.late_uploads = m.late_uploads->value();
    s.send_retries = m.send_retries->value();
    s.dropped_workers = m.dropped_workers->value();
    for (std::size_t i = 0; i < kMessageTypeCount; ++i) {
      s.tx_by_type[i] = m.bytes_tx_type[i]->value();
      s.rx_by_type[i] = m.bytes_rx_type[i]->value();
    }
    return s;
  }

  obs::RoundTrace::NetStats delta_since() const {
    const CounterSnapshot now = take();
    obs::RoundTrace::NetStats d;
    d.bytes_tx = now.bytes_tx - bytes_tx;
    d.bytes_rx = now.bytes_rx - bytes_rx;
    d.msgs_tx = now.msgs_tx - msgs_tx;
    d.msgs_rx = now.msgs_rx - msgs_rx;
    d.frame_errors = now.frame_errors - frame_errors;
    d.late_uploads = now.late_uploads - late_uploads;
    d.send_retries = now.send_retries - send_retries;
    d.dropped_workers = now.dropped_workers - dropped_workers;
    for (std::size_t i = 0; i < kMessageTypeCount; ++i) {
      const char* name = message_type_name(static_cast<MessageType>(i + 1));
      if (const std::uint64_t dt = now.tx_by_type[i] - tx_by_type[i]) {
        d.bytes_tx_by_type.emplace_back(name, dt);
      }
      if (const std::uint64_t dr = now.rx_by_type[i] - rx_by_type[i]) {
        d.bytes_rx_by_type.emplace_back(name, dr);
      }
    }
    return d;
  }
};

/// Token space for the worker liveness heartbeats, disjoint from the
/// per-round RTT ping tokens (which are round numbers).
constexpr std::uint64_t kLivenessTokenBase = 1ull << 63;

/// Sends one message under a fresh child span when tracing is on; the
/// disabled path is the plain send plus one pointer check. `parent_span`
/// links the send into the causal tree (0 = root of the round's tree).
template <typename Msg>
void traced_send(Endpoint& endpoint, const NodeTracer& tracer, NodeKey to,
                 MessageType type, const Msg& msg, std::uint64_t round,
                 std::uint64_t parent_span = 0) {
  if (!tracer.tracing()) {
    endpoint.send_msg(to, type, msg);
    return;
  }
  const obs::TraceContext ctx{round_trace_id(round),
                              next_span_id(tracer.node), parent_span};
  const std::uint64_t t0 = trace_now_us();
  endpoint.send_msg(to, type, msg, &ctx);
  tracer.span(obs::SpanKind::kSend, message_type_name(type), round, t0,
              trace_now_us() - t0, ctx, to);
  tracer.note(obs::FlightEventKind::kSend, to,
              static_cast<std::uint8_t>(type), round);
}

/// Recv-side bookkeeping for one handled envelope: the per-type
/// handle-time histogram always, a recv + handle span pair (and a
/// flight-ring note) when the envelope carried a trace context.
void note_handled(const NodeTracer& tracer, const Envelope& env,
                  std::chrono::steady_clock::time_point start) {
  const double ms = elapsed_ms(start);
  if (obs::Histogram* h = NetMetrics::global().handle_for(
          static_cast<std::uint8_t>(env.type))) {
    h->observe(ms);
  }
  if (!tracer.tracing() || !env.has_trace) return;
  const std::uint64_t round = env.trace.trace_id - 1;
  const std::uint64_t dur = static_cast<std::uint64_t>(ms * 1000.0);
  const std::uint64_t end = trace_now_us();
  const obs::TraceContext recv_ctx{env.trace.trace_id,
                                   next_span_id(tracer.node),
                                   env.trace.span_id};
  tracer.span(obs::SpanKind::kRecv, message_type_name(env.type), round,
              end - dur, 0, recv_ctx, env.from);
  const obs::TraceContext handle_ctx{env.trace.trace_id,
                                     next_span_id(tracer.node),
                                     recv_ctx.span_id};
  tracer.span(obs::SpanKind::kHandle, message_type_name(env.type), round,
              end - dur, dur, handle_ctx, env.from);
  tracer.note(obs::FlightEventKind::kRecv, env.from,
              static_cast<std::uint8_t>(env.type), round);
}

/// Executor round-phase bookkeeping: the phase histogram always, a phase
/// span (+ flight note) when tracing.
void note_phase(const NodeTracer& tracer, obs::Histogram* hist,
                const char* name, std::uint64_t round,
                std::chrono::steady_clock::time_point start) {
  const double ms = elapsed_ms(start);
  hist->observe(ms);
  if (!tracer.tracing()) return;
  const std::uint64_t dur = static_cast<std::uint64_t>(ms * 1000.0);
  const obs::TraceContext ctx{round_trace_id(round),
                              next_span_id(tracer.node), 0};
  tracer.span(obs::SpanKind::kPhase, name, round, trace_now_us() - dur, dur,
              ctx);
  tracer.note(obs::FlightEventKind::kPhase, obs::kNoFlightPeer, 0, round);
}

}  // namespace

std::vector<NodeKey> Topology::server_keys() const {
  std::vector<NodeKey> keys(servers);
  for (std::uint32_t j = 0; j < servers; ++j) keys[j] = server_key(j);
  return keys;
}

std::vector<fl::Upload> canonicalize_uploads(
    std::span<const GradientUploadMsg> msgs, std::size_t workers) {
  std::vector<fl::Upload> uploads(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    uploads[i].worker = static_cast<chain::NodeId>(i);
    uploads[i].arrived = false;
  }
  for (const GradientUploadMsg& msg : msgs) {
    if (msg.worker >= workers) {
      util::log_warn() << "net: upload from unknown worker " << msg.worker
                       << " ignored";
      continue;
    }
    fl::Upload& u = uploads[msg.worker];
    u.samples = static_cast<std::size_t>(msg.samples);
    // The single server-side densification point: sparse uploads become
    // dense gradients here, so the assessment pipeline (and every replica)
    // only ever sees the canonical dense form.
    u.gradient = msg.dense_gradient();
    u.arrived = true;
    u.ground_truth_attack = msg.ground_truth_attack != 0;
  }
  return uploads;
}

std::string parameter_hash(std::span<const float> params) {
  std::vector<std::uint8_t> bytes(params.size() * sizeof(float));
  if (!bytes.empty()) {
    std::memcpy(bytes.data(), params.data(), bytes.size());
  }
  return chain::to_hex(chain::sha256(bytes));
}

// ---------------------------------------------------------------------------
// WorkerNode
// ---------------------------------------------------------------------------

WorkerNode::WorkerNode(std::unique_ptr<fl::Worker> worker,
                       std::unique_ptr<Endpoint> endpoint, Topology topology,
                       NodeTimeouts timeouts, std::uint32_t supported_codecs,
                       WorkerAuditConfig audit)
    : worker_(std::move(worker)), endpoint_(std::move(endpoint)),
      topology_(topology), timeouts_(timeouts),
      supported_codecs_(supported_codecs), audit_(audit) {
  if (!worker_ || !endpoint_) {
    throw std::invalid_argument("WorkerNode: null worker or endpoint");
  }
  if (!fl::codec_in(supported_codecs_, fl::Codec::kDense)) {
    throw std::invalid_argument(
        "WorkerNode: codec mask must include kDense (negotiation fallback)");
  }
  tracer_ = NodeTracer::for_node(endpoint_->address());
}

void WorkerNode::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  endpoint_->close();
}

void WorkerNode::send_audit_query(std::uint64_t round, std::uint32_t server,
                                  std::uint64_t parent_span) {
  AuditQueryMsg query;
  query.round = round;
  query.worker = endpoint_->address();
  query.token = round;
  query.kind = static_cast<std::uint8_t>(chain::RecordKind::kReputation);
  // Proof caching: the server only ships the committed headers this
  // worker has not verified yet.
  query.last_verified_index = verified_headers_.size();
  try {
    traced_send(*endpoint_, tracer_, topology_.server_key(server),
                MessageType::kAuditQuery, query, round, parent_span);
  } catch (const std::exception& e) {
    util::log_warn() << "net: worker " << endpoint_->address()
                     << " audit query for round " << round
                     << " to server " << server << " failed: " << e.what();
  }
}

void WorkerNode::retry_audit() {
  if (!pending_audit_) return;
  if (pending_audit_->tried >= topology_.servers) {
    util::log_warn() << "net: worker " << endpoint_->address()
                     << " audit query for round " << pending_audit_->round
                     << " unanswered by every server, giving up";
    pending_audit_.reset();
    return;
  }
  // The last server never answered (crashed, or mid-election): any server
  // holds the committed prefix, so round-robin to the next one.
  pending_audit_->cursor = (pending_audit_->cursor + 1) % topology_.servers;
  ++pending_audit_->tried;
  pending_audit_->deadline =
      std::chrono::steady_clock::now() + timeouts_.liveness;
  send_audit_query(pending_audit_->round, pending_audit_->cursor, 0);
}

void WorkerNode::run() {
  current_lead_ = topology_.lead_key();
  JoinMsg join{endpoint_->address(), NodeRole::kWorker, supported_codecs_};
  std::uint64_t join_sent_us = 0;
  if (tracer_.tracing()) {
    // Advertise the trace feature and start the clock-sync handshake:
    // the JoinAck answers with the lead's clock, and half the measured
    // round trip estimates the one-way delay.
    join.features = kFeatureTrace;
    join_sent_us = trace_now_us();
    join.clock_us = join_sent_us;
  }
  traced_send(*endpoint_, tracer_, current_lead_, MessageType::kJoin, join, 0);
  const auto join_deadline = std::chrono::steady_clock::now() + timeouts_.join;
  bool acked = false;
  while (!acked && !stop_.load(std::memory_order_relaxed)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        join_deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      throw std::runtime_error("WorkerNode " +
                               std::to_string(endpoint_->address()) +
                               ": join timed out");
    }
    auto env = endpoint_->recv(left);
    if (!env) continue;
    if (env->type == MessageType::kJoinAck) {
      const auto handle_start = std::chrono::steady_clock::now();
      const auto ack = decode_payload<JoinAckMsg>(env->payload);
      upload_codec_ = static_cast<fl::Codec>(ack.upload_codec);
      keep_fraction_ = ack.keep_fraction;
      total_rounds_ = ack.rounds;
      if (tracer_.tracing() && (ack.features & kFeatureTrace) != 0) {
        const std::uint64_t t1 = trace_now_us();
        const std::int64_t rtt = static_cast<std::int64_t>(t1 - join_sent_us);
        const std::int64_t skew = static_cast<std::int64_t>(ack.clock_us) +
                                  rtt / 2 - static_cast<std::int64_t>(t1);
        tracer_.clock(skew, rtt);
      }
      note_handled(tracer_, *env, handle_start);
      acked = true;
    }
  }

  // Event loop with a liveness side-channel: wake at the heartbeat
  // interval, ping the current lead so it can tell "slow" from "dead",
  // and exit once nothing has been heard for four phases — long enough to
  // sit out an executor election (detection plus backoff plus votes), not
  // so long a dissolved federation strands the process.
  std::uint64_t liveness_token = kLivenessTokenBase;
  auto last_traffic = std::chrono::steady_clock::now();
  auto last_heartbeat = last_traffic;
  // Set when a Leave arrives while an audit is still in flight: under
  // executor rotation the final rounds can close within milliseconds,
  // so the Leave (sent by the last executor) may overtake a proof still
  // travelling on another server's link. Linger until the pending audit
  // resolves — retry_audit keeps round-robining and gives up once every
  // server has stayed silent — bounded by this backstop deadline.
  std::optional<std::chrono::steady_clock::time_point> leave_deadline;
  while (!stop_.load(std::memory_order_relaxed)) {
    const auto now = std::chrono::steady_clock::now();
    if (leave_deadline && (!pending_audit_ || now >= *leave_deadline)) break;
    if (now - last_traffic > 4 * timeouts_.phase) {
      // Idle timeout without a Leave: the federation went away.
      util::log_warn() << "net: worker " << endpoint_->address()
                       << " timed out waiting for traffic, exiting";
      break;
    }
    if (now - last_heartbeat >= timeouts_.heartbeat) {
      last_heartbeat = now;
      try {
        endpoint_->send_msg(
            current_lead_, MessageType::kHeartbeat,
            HeartbeatMsg{endpoint_->address(), liveness_token++, 0});
      } catch (const std::exception& e) {
        util::log_debug() << "net: worker " << endpoint_->address()
                          << " heartbeat failed: " << e.what();
      }
    }
    if (pending_audit_ && now >= pending_audit_->deadline) retry_audit();
    auto env = endpoint_->recv(timeouts_.heartbeat);
    if (!env) continue;
    last_traffic = std::chrono::steady_clock::now();
    switch (env->type) {
      case MessageType::kModelBroadcast:
        // Whoever fans out θ is the executor: re-home liveness traffic.
        if (env->from >= topology_.workers) current_lead_ = env->from;
        handle_broadcast(decode_payload<ModelBroadcastMsg>(env->payload),
                         env->has_trace ? env->trace.span_id : 0);
        note_handled(tracer_, *env, last_traffic);
        break;
      case MessageType::kAssessmentResult: {
        if (env->from >= topology_.workers) current_lead_ = env->from;
        const auto msg = decode_payload<AssessmentResultMsg>(env->payload);
        for (const WorkerAssessment& wa : msg.workers) {
          if (wa.worker == endpoint_->address()) {
            observed_rewards_.push_back(wa.reward);
          }
        }
        // Audit the round that just closed: ask for a Merkle inclusion
        // proof of this worker's reputation record. The final round is
        // skipped — the executor tears the federation down right after
        // the last assessment, so the reply window only exists while
        // another round is being driven. First try aims at the current
        // lead; retry_audit round-robins to the other servers (any of
        // them holds the committed prefix) if it stays silent.
        if (audit_.enabled && msg.round + 1 < total_rounds_) {
          const std::uint32_t lead_index =
              current_lead_ >= topology_.workers
                  ? static_cast<std::uint32_t>(current_lead_ -
                                               topology_.workers)
                  : 0;
          pending_audit_ = PendingAudit{
              msg.round,
              std::chrono::steady_clock::now() + timeouts_.liveness, 1,
              lead_index};
          send_audit_query(msg.round, lead_index,
                           env->has_trace ? env->trace.span_id : 0);
        }
        note_handled(tracer_, *env, last_traffic);
        break;
      }
      case MessageType::kAuditProof: {
        const auto msg = decode_payload<AuditProofMsg>(env->payload);
        if (audit_.enabled && msg.worker == endpoint_->address()) {
          if (!audit_registry_) {
            // Independent PKI replica: derived from the shared seed, never
            // received over the wire, so a lying server cannot also hand
            // the worker the keys that would make the lie check out.
            audit_registry_.emplace(chain::ReplicatedLedger::make_registry(
                audit_.key_seed, topology_.workers, topology_.servers));
          }
          chain::AuditProofBundle bundle = msg.bundle();
          if (bundle.headers_from != 0 &&
              bundle.headers_from <= verified_headers_.size()) {
            // Cached-proof splice: the server elided the prefix this
            // worker already verified; rebuild the genesis-anchored chain
            // from the local cache before verification.
            std::vector<chain::SealedBlockHeader> full(
                verified_headers_.begin(),
                verified_headers_.begin() +
                    static_cast<std::ptrdiff_t>(bundle.headers_from));
            full.insert(full.end(), bundle.headers.begin(),
                        bundle.headers.end());
            bundle.headers = std::move(full);
            bundle.headers_from = 0;
          }
          const bool verified =
              msg.found != 0 &&
              bundle.record.subject == endpoint_->address() &&
              bundle.record.round == msg.token &&
              bundle.record.kind == chain::RecordKind::kReputation &&
              chain::verify_audit_proof(bundle, *audit_registry_,
                                        topology_.workers,
                                        topology_.servers);
          audit_outcomes_.push_back({msg.token, verified});
          if (verified && bundle.headers.size() > verified_headers_.size()) {
            verified_headers_ = bundle.headers;
          }
          if (!verified) {
            util::log_warn() << "net: worker " << endpoint_->address()
                             << " audit proof for round " << msg.token
                             << " FAILED verification";
          }
          if (pending_audit_ && pending_audit_->round == msg.token) {
            pending_audit_.reset();
          }
        }
        note_handled(tracer_, *env, last_traffic);
        break;
      }
      case MessageType::kHeartbeat: {
        auto hb = decode_payload<HeartbeatMsg>(env->payload);
        if (hb.echo == 0) {
          endpoint_->send_msg(
              env->from, MessageType::kHeartbeat,
              HeartbeatMsg{endpoint_->address(), hb.token, 1});
        } else if (auto it = ping_sent_.find(hb.token);
                   it != ping_sent_.end()) {
          NetMetrics::global().rtt_ms->observe(elapsed_ms(it->second));
          ping_sent_.erase(it);
        }
        break;
      }
      case MessageType::kLeave:
        if (!pending_audit_) return;
        leave_deadline =
            now + timeouts_.liveness * (topology_.servers + 1);
        break;
      default:
        break;  // stray control traffic
    }
  }
}

void WorkerNode::handle_broadcast(const ModelBroadcastMsg& msg,
                                  std::uint64_t parent_span) {
  // Duplicate broadcast (a re-elected executor re-driving the round):
  // re-send the cached upload instead of retraining — retraining would
  // advance the local RNG and fork this worker off the deterministic
  // reference sequence.
  if (has_trained_ && msg.round < last_trained_round_) return;  // stale
  if (has_trained_ && msg.round == last_trained_round_) {
    for (NodeKey server : topology_.server_keys()) {
      try {
        traced_send(*endpoint_, tracer_, server, MessageType::kGradientUpload,
                    cached_upload_, msg.round, parent_span);
      } catch (const std::exception& e) {
        util::log_warn() << "net: worker " << endpoint_->address()
                         << " failed to re-upload to server " << server
                         << ": " << e.what();
      }
    }
    try {
      endpoint_->send_msg(current_lead_, MessageType::kHeartbeat,
                          HeartbeatMsg{endpoint_->address(), msg.round, 0});
    } catch (const std::exception&) {
    }
    return;
  }
  // Materialize θ_t: a dense broadcast replaces the local replica, a
  // delta patches it — but only against the exact baseline the lead
  // encoded it from. A mismatched baseline (the previous broadcast never
  // arrived, or a restart lost params_) is dropped without an ack, so the
  // lead keeps re-basing on the round we actually hold until a dense
  // fallback re-homes us.
  if (msg.codec == static_cast<std::uint8_t>(fl::Codec::kDelta)) {
    if (!has_params_ || params_round_ != msg.base_round ||
        params_.size() != msg.delta.dense_size) {
      util::log_warn() << "net: worker " << endpoint_->address()
                       << " cannot apply delta broadcast for round "
                       << msg.round << " (base " << msg.base_round
                       << ", have "
                       << (has_params_ ? std::to_string(params_round_)
                                       : std::string("none"))
                       << "), dropping";
      return;
    }
    msg.delta.apply_to(params_);
  } else {
    const nn::ParsedCheckpoint parsed = nn::parse_checkpoint(msg.checkpoint);
    params_ = parsed.parameters;
  }
  has_params_ = true;
  params_round_ = msg.round;

  fl::Upload upload = worker_->make_upload(params_);

  GradientUploadMsg out;
  out.round = msg.round;
  out.worker = endpoint_->address();
  out.samples = upload.samples;
  out.ground_truth_attack = upload.ground_truth_attack ? 1 : 0;
  out.codec = static_cast<std::uint8_t>(upload_codec_);
  if (upload_codec_ == fl::Codec::kTopK) {
    out.sparse = fl::topk_compress(upload.gradient.flat(), keep_fraction_);
  } else {
    out.gradient.assign(upload.gradient.flat().begin(),
                        upload.gradient.flat().end());
  }
  has_trained_ = true;
  last_trained_round_ = msg.round;
  cached_upload_ = out;
  for (NodeKey server : topology_.server_keys()) {
    try {
      traced_send(*endpoint_, tracer_, server, MessageType::kGradientUpload,
                  out, msg.round, parent_span);
    } catch (const std::exception& e) {
      // One unreachable server must not kill the worker: the lead's
      // quorum path absorbs the missing upload.
      util::log_warn() << "net: worker " << endpoint_->address()
                       << " failed to upload to server " << server << ": "
                       << e.what();
    }
  }
  // Ping the lead once per round; the echo feeds net.rtt_ms.
  ping_sent_[msg.round] = std::chrono::steady_clock::now();
  try {
    endpoint_->send_msg(current_lead_, MessageType::kHeartbeat,
                        HeartbeatMsg{endpoint_->address(), msg.round, 0});
  } catch (const std::exception&) {
    ping_sent_.erase(msg.round);
  }
}

// ---------------------------------------------------------------------------
// ServerNode
// ---------------------------------------------------------------------------

ServerNode::ServerNode(ServerNodeConfig config,
                       std::unique_ptr<core::FiflEngine> engine,
                       std::unique_ptr<nn::Sequential> global_model,
                       std::unique_ptr<Endpoint> endpoint, Topology topology)
    : config_(config), engine_(std::move(engine)),
      global_model_(std::move(global_model)), endpoint_(std::move(endpoint)),
      topology_(topology) {
  if (!engine_ || !endpoint_) {
    throw std::invalid_argument("ServerNode: null engine or endpoint");
  }
  if (config_.server_index >= topology_.servers) {
    throw std::invalid_argument("ServerNode: server index out of range");
  }
  if ((config_.rotate_executor || config_.failover) &&
      !config_.replicate_ledger) {
    throw std::invalid_argument(
        "ServerNode: rotation/failover requires replicate_ledger");
  }
  if (is_lead() && !global_model_) {
    throw std::invalid_argument(
        "ServerNode: the bootstrap lead owns the global model");
  }
  if ((config_.rotate_executor || config_.failover) && !global_model_) {
    throw std::invalid_argument(
        "ServerNode: rotation/failover needs a global model on every server");
  }
  if (config_.replicate_ledger) {
    replicated_ = std::make_unique<chain::ReplicatedLedger>(
        &engine_->ledger(), config_.ledger_key_seed, topology_.workers,
        topology_.servers, topology_.server_key(config_.server_index));
  }
  tracer_ = NodeTracer::for_node(endpoint_->address());
}

void ServerNode::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  endpoint_->close();
}

void ServerNode::run() {
  if (is_lead()) {
    await_federation();
    // The bootstrap lead's clock is the merged timeline's reference.
    if (tracer_.tracing()) tracer_.clock(0, 0);
  } else {
    join_federation();
  }
  // Role dispatcher: rotation, elections, and demotions move the executor
  // role at runtime; each sub-loop returns whenever the role flips.
  while (!done_ && !stop_.load(std::memory_order_relaxed)) {
    if (is_executor()) {
      run_executor();
    } else {
      run_follower();
    }
  }
}

void ServerNode::note_worker_traffic(NodeKey from) {
  if (from >= topology_.workers) return;
  last_seen_[from] = std::chrono::steady_clock::now();
}

void ServerNode::handle_control(const Envelope& envelope) {
  const auto handle_start = std::chrono::steady_clock::now();
  note_worker_traffic(envelope.from);
  switch (envelope.type) {
    case MessageType::kJoin: {
      const auto join = decode_payload<JoinMsg>(envelope.payload);
      if (is_lead()) {
        JoinAckMsg ack;
        ack.node = join.node;
        ack.workers = topology_.workers;
        ack.servers = topology_.servers;
        ack.param_count =
            global_model_ ? global_model_->parameter_count() : 0;
        ack.rounds = config_.rounds;
        if (join.role == NodeRole::kWorker) {
          ++joined_workers_;
          // Per-worker codec negotiation: the policy's preference wins iff
          // the worker advertised it; kDense otherwise. Mixed-codec
          // clusters fall out of this naturally.
          fl::Codec up = fl::Codec::kDense;
          if (config_.compression.upload == fl::Codec::kTopK &&
              fl::codec_in(join.codecs, fl::Codec::kTopK)) {
            up = fl::Codec::kTopK;
          }
          fl::Codec bc = fl::Codec::kDense;
          if (config_.compression.broadcast == fl::Codec::kDelta &&
              fl::codec_in(join.codecs, fl::Codec::kDelta)) {
            bc = fl::Codec::kDelta;
          }
          peer_broadcast_codec_[join.node] = bc;
          ack.upload_codec = static_cast<std::uint8_t>(up);
          ack.broadcast_codec = static_cast<std::uint8_t>(bc);
          ack.keep_fraction = up == fl::Codec::kTopK
                                  ? config_.compression.topk_keep_fraction
                                  : 1.0;
        } else {
          ++joined_servers_;
        }
        if (tracer_.tracing() && (join.features & kFeatureTrace) != 0) {
          // Both sides advertised tracing: answer with this (reference)
          // clock so the joiner can estimate its skew from the RTT.
          ack.features = kFeatureTrace;
          ack.clock_us = trace_now_us();
        }
        traced_send(*endpoint_, tracer_, envelope.from, MessageType::kJoinAck,
                    ack, 0, envelope.has_trace ? envelope.trace.span_id : 0);
      }
      break;
    }
    case MessageType::kHeartbeat: {
      auto hb = decode_payload<HeartbeatMsg>(envelope.payload);
      if (hb.echo == 0) {
        // A worker's per-round RTT ping doubles as a broadcast ack: tokens
        // below kLivenessTokenBase are the round number whose θ it holds.
        if (envelope.from < topology_.workers &&
            hb.token < kLivenessTokenBase) {
          note_broadcast_ack(envelope.from, hb.token);
        }
        try {
          endpoint_->send_msg(envelope.from, MessageType::kHeartbeat,
                              HeartbeatMsg{endpoint_->address(), hb.token, 1});
        } catch (const std::exception&) {
          // An unreachable pinger is the liveness machinery's problem.
        }
      }
      break;
    }
    case MessageType::kSliceAggregate: {
      auto slice = decode_payload<SliceAggregateMsg>(envelope.payload);
      const std::uint64_t round = slice.round;
      pending_slices_[round][slice.server_index] = std::move(slice);
      break;
    }
    case MessageType::kRoundSummary: {
      // Buffer even while holding the executor role: during a rotation
      // handoff the successor can finish its whole round before this node
      // leaves its own round's tail (slice wait, commit wait, assessment
      // fan-out), and dropping that summary here would silently diverge
      // this replica. The follower drain discards stale rounds anyway.
      auto summary = decode_payload<RoundSummaryMsg>(envelope.payload);
      summary_sender_[summary.round] = envelope.from;
      pending_summaries_[summary.round] = std::move(summary);
      break;
    }
    case MessageType::kBlockProposal: {
      if (replicated_) {
        auto proposal = decode_payload<BlockProposalMsg>(envelope.payload);
        // Buffer only (executor role included — see kRoundSummary):
        // voting waits until this replica has sealed the block itself
        // (run_follower drains after each summary).
        pending_proposals_[proposal.block_index] = std::move(proposal);
      }
      break;
    }
    case MessageType::kBlockVote: {
      if (replicated_) {
        apply_block_vote(decode_payload<BlockVoteMsg>(envelope.payload));
      }
      break;
    }
    case MessageType::kAuditQuery: {
      // Any server answers from its committed prefix — a worker whose
      // first query hit a crashed lead retries against the followers. A
      // replica that has not committed the queried round yet (diverged,
      // or simply behind across a handoff) stays silent instead of
      // proving: the worker's retry finds a server that can.
      if (replicated_) {
        const auto query = decode_payload<AuditQueryMsg>(envelope.payload);
        if (!replicated_->committed(query.round)) break;
        const chain::AuditProofBundle bundle = replicated_->prove(
            static_cast<chain::RecordKind>(query.kind), query.round,
            query.worker, query.last_verified_index);
        try {
          traced_send(*endpoint_, tracer_, envelope.from,
                      MessageType::kAuditProof,
                      AuditProofMsg::from_bundle(query.round, query.worker,
                                                 query.token, bundle),
                      query.round,
                      envelope.has_trace ? envelope.trace.span_id : 0);
        } catch (const std::exception& e) {
          util::log_warn() << "net: audit proof to node " << envelope.from
                           << " failed: " << e.what();
        }
      }
      break;
    }
    case MessageType::kViewChange: {
      if (config_.failover && replicated_) {
        handle_view_change(decode_payload<ViewChangeMsg>(envelope.payload));
      }
      break;
    }
    case MessageType::kViewChangeVote: {
      if (config_.failover && replicated_) {
        election_votes_.push_back(
            decode_payload<ViewChangeVoteMsg>(envelope.payload));
      }
      break;
    }
    case MessageType::kChainSyncRequest: {
      if (replicated_) {
        serve_chain_sync(decode_payload<ChainSyncRequestMsg>(envelope.payload),
                         envelope.from);
      }
      break;
    }
    case MessageType::kChainSyncResponse:
      // Stray or late response: the requester's blocking wait already
      // moved on, and an unsolicited sync must not mutate the replica.
      break;
    case MessageType::kLeave:
      leave_received_ = true;
      break;
    default:
      break;
  }
  note_handled(tracer_, envelope, handle_start);
}

void ServerNode::lead_handle_upload(
    GradientUploadMsg msg, std::uint64_t round,
    std::map<std::uint32_t, GradientUploadMsg>* slots) {
  auto& metrics = NetMetrics::global();
  note_worker_traffic(msg.worker);
  if (dead_workers_.count(msg.worker) != 0) {
    // A declared-dead worker is speaking again: its uploads stay rejected
    // for the round in flight (the roster already shrank around it), but
    // it re-homes at the next ModelBroadcast and catches up from there.
    metrics.dead_uploads->inc();
    if (revive_pending_.insert(msg.worker).second) {
      metrics.worker_rejoins->inc();
      util::log_info() << "net: dead worker " << msg.worker
                       << " is back, re-homing at next broadcast";
    }
    return;
  }
  // An upload for round r proves the worker trained on θ_r, so it doubles
  // as a broadcast ack for delta re-basing.
  note_broadcast_ack(msg.worker, msg.round);
  if (slots != nullptr && msg.round == round) {
    (*slots)[msg.worker] = std::move(msg);
  } else if (msg.round > round) {
    pending_uploads_[msg.round][msg.worker] = std::move(msg);
  } else {
    // Upload for a round whose collect window already closed.
    metrics.late_uploads->inc();
    util::log_debug() << "net: late upload from worker " << msg.worker
                      << " for round " << msg.round << " (current " << round
                      << ")";
  }
}

void ServerNode::collect_uploads(
    std::uint64_t round, std::map<std::uint32_t, GradientUploadMsg>& slots,
    std::chrono::steady_clock::time_point deadline) {
  auto& metrics = NetMetrics::global();
  if (auto it = pending_uploads_.find(round); it != pending_uploads_.end()) {
    // Route buffered-ahead uploads through the same intake as live ones,
    // so a dead worker's early upload still counts as "spoke again".
    auto buffered = std::move(it->second);
    pending_uploads_.erase(it);
    for (auto& [worker, msg] : buffered) {
      lead_handle_upload(std::move(msg), round, &slots);
    }
  }
  while (!leave_received_ && !stop_.load(std::memory_order_relaxed)) {
    // Prune the roster: silence longer than the liveness window means the
    // worker process is gone, not slow. Its slot is given up immediately
    // so a crashed worker costs one liveness window, not a full phase
    // timeout every round.
    const auto now = std::chrono::steady_clock::now();
    for (std::uint32_t i = 0; i < topology_.workers; ++i) {
      if (dead_workers_.count(i) != 0) continue;
      const auto seen = last_seen_.find(i);
      if (seen != last_seen_.end() &&
          now - seen->second > config_.timeouts.liveness) {
        dead_workers_.insert(i);
        // Forget its broadcast ack: a rejoin re-bases on a dense
        // checkpoint instead of a delta against θ it may have lost.
        acked_round_.erase(i);
        metrics.dropped_workers->inc();
        tracer_.note(obs::FlightEventKind::kDeadWorker, i, 0, round);
        util::log_warn() << "net: server " << endpoint_->address()
                         << " declared worker " << i
                         << " dead (silent beyond the liveness window)";
      }
    }
    bool all_live_slotted = true;
    for (std::uint32_t i = 0; i < topology_.workers; ++i) {
      if (dead_workers_.count(i) == 0 && slots.count(i) == 0) {
        all_live_slotted = false;
        break;
      }
    }
    if (all_live_slotted) break;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    if (left.count() <= 0) break;  // missing workers become uncertain events
    auto env = endpoint_->recv(std::min(left, config_.timeouts.heartbeat));
    if (!env) continue;  // wake up for the liveness scan regardless
    if (env->type == MessageType::kGradientUpload) {
      const auto handle_start = std::chrono::steady_clock::now();
      lead_handle_upload(decode_payload<GradientUploadMsg>(env->payload),
                         round, &slots);
      note_handled(tracer_, *env, handle_start);
    } else {
      handle_control(*env);
    }
  }
}

void ServerNode::await_federation() {
  const auto join_deadline =
      std::chrono::steady_clock::now() + config_.timeouts.join;
  while ((joined_workers_ < topology_.workers ||
          joined_servers_ + 1 < topology_.servers) &&
         !stop_.load(std::memory_order_relaxed)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        join_deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      throw std::runtime_error(
          "lead: join phase timed out (" + std::to_string(joined_workers_) +
          "/" + std::to_string(topology_.workers) + " workers, " +
          std::to_string(joined_servers_ + 1) + "/" +
          std::to_string(topology_.servers) + " servers)");
    }
    auto env = endpoint_->recv(left);
    if (env) handle_control(*env);
  }
}

void ServerNode::join_federation() {
  const NodeKey lead = topology_.lead_key();
  JoinMsg join{endpoint_->address(), NodeRole::kServer};
  std::uint64_t join_sent_us = 0;
  if (tracer_.tracing()) {
    join.features = kFeatureTrace;
    join_sent_us = trace_now_us();
    join.clock_us = join_sent_us;
  }
  traced_send(*endpoint_, tracer_, lead, MessageType::kJoin, join, 0);
  const auto join_deadline =
      std::chrono::steady_clock::now() + config_.timeouts.join;
  bool acked = false;
  while (!acked && !stop_.load(std::memory_order_relaxed)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        join_deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      throw std::runtime_error("ServerNode " +
                               std::to_string(endpoint_->address()) +
                               ": join timed out");
    }
    auto env = endpoint_->recv(left);
    if (!env) continue;
    if (env->type == MessageType::kJoinAck) {
      const auto handle_start = std::chrono::steady_clock::now();
      const auto ack = decode_payload<JoinAckMsg>(env->payload);
      // A follower that may be elected executor must know when the run
      // ends; the JoinAck carries the lead's round budget.
      if (config_.rounds == 0) config_.rounds = ack.rounds;
      if (tracer_.tracing() && (ack.features & kFeatureTrace) != 0) {
        const std::uint64_t t1 = trace_now_us();
        const std::int64_t rtt = static_cast<std::int64_t>(t1 - join_sent_us);
        const std::int64_t skew = static_cast<std::int64_t>(ack.clock_us) +
                                  rtt / 2 - static_cast<std::int64_t>(t1);
        tracer_.clock(skew, rtt);
      }
      note_handled(tracer_, *env, handle_start);
      acked = true;
    } else {
      handle_control(*env);
    }
  }
}

void ServerNode::run_executor() {
  obs::RoundTraceRecorder* recorder =
      trace_recorder_ ? trace_recorder_ : &obs::RoundTraceRecorder::global();
  auto& metrics = NetMetrics::global();
  const std::size_t quorum_min = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(config_.quorum.min_fraction *
                                            topology_.workers)));
  const std::uint32_t self = config_.server_index;

  while (next_round_ < config_.rounds &&
         !stop_.load(std::memory_order_relaxed)) {
    const std::uint64_t r = next_round_;
    const CounterSnapshot net_before = CounterSnapshot::take();
    const auto train_start = std::chrono::steady_clock::now();

    // Re-home workers that spoke again after being declared dead: they
    // rejoin the roster exactly at a broadcast, so they catch up from the
    // current θ and never land mid-round without a model.
    for (NodeKey worker : revive_pending_) {
      if (dead_workers_.erase(worker) != 0) {
        util::log_info() << "net: worker " << worker << " rejoined for round "
                         << r;
      }
    }
    revive_pending_.clear();

    // Broadcast θ_t to the live roster; every live worker's liveness
    // window restarts here so a long collect cannot starve it. Workers
    // that negotiated kDelta get a sparse update against the last θ they
    // acknowledged when that beats the dense checkpoint. Workers whose
    // upload for r is already buffered (this executor took over a round
    // the old one had broadcast) are skipped — they trained this round
    // and a duplicate broadcast would only cost a cached re-upload.
    ModelBroadcastMsg broadcast;
    broadcast.round = r;
    broadcast.checkpoint =
        nn::checkpoint_bytes(*global_model_, "round-" + std::to_string(r));
    const std::vector<float> theta = global_model_->flatten_parameters();
    std::map<std::uint64_t, std::optional<ModelBroadcastMsg>> delta_cache;
    const auto redriven = pending_uploads_.find(r);
    for (std::uint32_t i = 0; i < topology_.workers; ++i) {
      if (dead_workers_.count(i) != 0) continue;
      last_seen_[i] = train_start;
      if (redriven != pending_uploads_.end() &&
          redriven->second.count(i) != 0) {
        continue;
      }
      try {
        traced_send(*endpoint_, tracer_, topology_.worker_key(i),
                    MessageType::kModelBroadcast,
                    broadcast_for(i, broadcast, theta, delta_cache), r);
      } catch (const std::exception& e) {
        util::log_warn() << "net: broadcast to worker " << i
                         << " failed: " << e.what();
      }
    }
    note_phase(tracer_, metrics.phase_broadcast_ms, "broadcast", r,
               train_start);
    const bool any_delta_peer = std::any_of(
        peer_broadcast_codec_.begin(), peer_broadcast_codec_.end(),
        [](const auto& kv) { return kv.second == fl::Codec::kDelta; });
    if (any_delta_peer) {
      broadcast_history_[r] = theta;
      constexpr std::size_t kHistoryDepth = 8;
      while (broadcast_history_.size() > kHistoryDepth) {
        broadcast_history_.erase(broadcast_history_.begin());
      }
    }

    // Collect uploads (the networked analogue of local_train + channel).
    const auto collect_start = std::chrono::steady_clock::now();
    std::map<std::uint32_t, GradientUploadMsg> slots;
    collect_uploads(r, slots, collect_start + config_.timeouts.phase);
    if (stop_.load(std::memory_order_relaxed)) return;
    const double collect_ms = elapsed_ms(train_start);
    note_phase(tracer_, metrics.phase_collect_ms, "collect", r, collect_start);

    // Quorum gate: proceed on a partial roster, abort below the floor.
    const std::size_t counted = slots.size();
    const std::size_t live =
        topology_.workers - std::min<std::size_t>(dead_workers_.size(),
                                                  topology_.workers);
    if (counted < quorum_min) {
      if (config_.failover) {
        // Losing the worker quorum under failover means *this* server is
        // likely the partitioned side, not the workers: demote to
        // follower instead of killing the run, give the uploads back to
        // the buffer (a successor re-drives r from them), and forget
        // every liveness judgment made while partitioned. The mute keeps
        // a truly isolated ex-executor from proposing elections into the
        // void; any received envelope lifts it.
        util::log_warn() << "net: server " << endpoint_->address()
                         << " lost the worker quorum for round " << r << " ("
                         << counted << " of " << topology_.workers
                         << "), stepping down as executor";
        for (auto& [worker, msg] : slots) {
          pending_uploads_[r][worker] = std::move(msg);
        }
        dead_workers_.clear();
        revive_pending_.clear();
        last_seen_.clear();
        acked_round_.clear();
        executor_index_ = kUnknownExecutor;
        election_muted_ = true;
        return;
      }
      // Abort path: capture the last K events of every node before the
      // exception unwinds the cluster.
      tracer_.note(obs::FlightEventKind::kQuorumAbort, obs::kNoFlightPeer, 0,
                   r, counted);
      obs::FlightRegistry::global().dump("quorum_abort");
      throw std::runtime_error(
          "lead: round " + std::to_string(r) + " below quorum (" +
          std::to_string(counted) + " of " + std::to_string(topology_.workers) +
          " uploads, quorum " + std::to_string(quorum_min) + ")");
    }
    if (counted < topology_.workers) {
      metrics.rounds_degraded->inc();
      tracer_.note(obs::FlightEventKind::kDegradedRound, obs::kNoFlightPeer, 0,
                   r, counted);
      util::log_warn() << "net: round " << r << " degraded: " << counted
                       << " of " << topology_.workers << " uploads counted";
    }

    // Publish the counted set so every follower replica feeds its engine
    // the same inputs this one is about to see. The summary also names
    // the next round's executor: under rotation the next live server,
    // otherwise this one (the field doubles as the "who is the lead right
    // now" signal rejoining nodes re-home on).
    const std::uint32_t next_executor =
        (config_.rotate_executor && r + 1 < config_.rounds)
            ? next_live_server(self)
            : self;
    RoundSummaryMsg summary;
    summary.round = r;
    summary.degraded = counted < topology_.workers ? 1 : 0;
    summary.next_executor = next_executor;
    summary.counted.reserve(counted);
    for (const auto& [worker, msg] : slots) summary.counted.push_back(worker);
    const auto assess_start = std::chrono::steady_clock::now();
    send_to_other_servers(MessageType::kRoundSummary, summary, r);

    std::vector<GradientUploadMsg> msgs;
    msgs.reserve(slots.size());
    for (auto& [worker, msg] : slots) msgs.push_back(std::move(msg));
    const std::vector<fl::Upload> uploads =
        canonicalize_uploads(msgs, topology_.workers);

    // Full pipeline on the executor's replica.
    const core::RoundReport report = engine_->process_round(uploads);

    if (replicated_) {
      // The engine just sealed block r; propose it. Followers re-derive
      // the same block from their own replica state and answer with
      // signed endorsements — the executor never ships a bare "trust me".
      const chain::SealedBlockHeader& sealed = replicated_->propose(r);
      BlockProposalMsg proposal;
      proposal.round = r;
      proposal.block_index = sealed.header.index;
      proposal.previous_hash = sealed.header.previous_hash;
      proposal.merkle_root = sealed.header.merkle_root;
      proposal.block_hash = sealed.header.block_hash;
      proposal.executor_sig = sealed.executor_sig;
      proposal.records = engine_->ledger().block(r).records;
      send_to_other_servers(MessageType::kBlockProposal, proposal, r);
      drain_pending_votes(r);
    }

    // Gather the follower slices and check every complete one bitwise
    // against this replica's result: divergence on a complete slice means
    // the deterministic-replica invariant broke, which would silently
    // fork the federation. A missing or incomplete slice is a tolerated
    // crash-fault gap (net.slice_gaps), not divergence; known-dead
    // servers are not waited for and not counted as gaps.
    const auto slice_deadline =
        std::chrono::steady_clock::now() + config_.timeouts.phase;
    while (pending_slices_[r].size() + 1 + dead_servers_.size() <
               topology_.servers &&
           !stop_.load(std::memory_order_relaxed)) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          slice_deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) break;
      auto env = endpoint_->recv(left);
      if (!env) continue;
      if (env->type == MessageType::kGradientUpload) {
        const auto handle_start = std::chrono::steady_clock::now();
        lead_handle_upload(decode_payload<GradientUploadMsg>(env->payload), r,
                           nullptr);
        note_handled(tracer_, *env, handle_start);
      } else {
        handle_control(*env);
      }
    }
    for (std::uint32_t j = 0; j < topology_.servers; ++j) {
      if (j == self || dead_servers_.count(j) != 0) continue;
      const auto slice_it = pending_slices_[r].find(j);
      if (slice_it == pending_slices_[r].end()) {
        metrics.slice_gaps->inc();
        util::log_warn() << "net: no slice from server " << j << " for round "
                         << r;
        continue;
      }
      const SliceAggregateMsg& slice = slice_it->second;
      if (slice.complete == 0) {
        metrics.slice_gaps->inc();
        util::log_warn() << "net: server " << j
                         << " could not reproduce round " << r
                         << " (incomplete slice)";
        continue;
      }
      const std::span<const float> own =
          engine_->plan().slice(report.global_gradient, j);
      if (slice.offset != engine_->plan().offset(j) ||
          slice.values.size() != own.size() ||
          !std::equal(own.begin(), own.end(), slice.values.begin())) {
        // Byzantine (or broken-replica) divergence: dump every node's
        // recent events before aborting, so the postmortem shows what
        // each replica saw leading up to the mismatched slice.
        tracer_.note(obs::FlightEventKind::kDivergence,
                     topology_.server_key(j),
                     static_cast<std::uint8_t>(MessageType::kSliceAggregate),
                     r);
        obs::FlightRegistry::global().dump("byzantine_divergence");
        throw std::runtime_error("lead: server " + std::to_string(j) +
                                 " diverged from the replicated engine on round " +
                                 std::to_string(r));
      }
    }
    pending_slices_.erase(r);

    if (replicated_ && !replicated_->committed(r)) {
      // Block r must reach endorsement quorum before the round's effects
      // (θ update, assessment) are published — a below-quorum ledger means
      // the audit trail is no longer replicated enough to be trusted.
      const auto commit_start = std::chrono::steady_clock::now();
      if (!await_ledger_commit(r)) return;  // demoted: a successor re-drives r
      if (stop_.load(std::memory_order_relaxed)) return;
      note_phase(tracer_, metrics.phase_ledger_commit_ms, "ledger_commit", r,
                 commit_start);
    }

    // θ ← θ − η·G̃ — identical float ops to Simulator::apply_round because
    // the engine's aggregation loop is the simulator's (and the follower
    // slices were just proven bitwise equal).
    fl::apply_gradient_step(*global_model_, report.global_gradient,
                            config_.global_learning_rate);
    theta_round_ = r + 1;

    // Publish the assessment + this round's sealed audit records.
    AssessmentResultMsg assessment;
    assessment.round = r;
    assessment.degraded = report.degraded ? 1 : 0;
    assessment.fairness = report.fairness;
    assessment.workers.reserve(topology_.workers);
    for (std::uint32_t i = 0; i < topology_.workers; ++i) {
      WorkerAssessment wa;
      wa.worker = i;
      wa.arrived = uploads[i].arrived ? 1 : 0;
      wa.accepted = report.detection.accepted[i] ? 1 : 0;
      wa.uncertain = report.detection.uncertain[i] ? 1 : 0;
      wa.score = report.detection.scores[i];
      wa.reputation = report.reputations[i];
      wa.contribution = report.contribution.contributions[i];
      wa.reward = report.rewards[i];
      assessment.workers.push_back(wa);
    }
    assessment.records = engine_->ledger().query(std::nullopt, r, std::nullopt);
    for (std::uint32_t i = 0; i < topology_.workers; ++i) {
      if (dead_workers_.count(i) != 0) continue;
      try {
        traced_send(*endpoint_, tracer_, topology_.worker_key(i),
                    MessageType::kAssessmentResult, assessment, r);
      } catch (const std::exception& e) {
        util::log_warn() << "net: assessment to worker " << i
                         << " failed: " << e.what();
      }
    }
    note_phase(tracer_, metrics.phase_assess_ms, "assess", r, assess_start);

    // Round bookkeeping: result row, trace, callback.
    NetRoundResult result;
    result.round = r;
    result.model_hash = parameter_hash(global_model_->flatten_parameters());
    result.degraded = report.degraded;
    result.fairness = report.fairness;
    result.reputations = report.reputations;
    result.rewards = report.rewards;
    result.counted = counted;
    result.live_workers = live;
    result.arrived.reserve(uploads.size());
    for (const fl::Upload& u : uploads) {
      result.arrived.push_back(u.arrived ? 1 : 0);
    }
    core::RoundRecord record;
    core::summarize_report(report, uploads, record);
    result.accepted = record.accepted;
    result.rejected = record.rejected;
    result.uncertain = record.uncertain;

    if (recorder->enabled()) {
      obs::RoundTrace trace = core::make_round_trace(r, report, uploads);
      // The broadcast->collect window plays the role of local_train +
      // channel; the wire has no separate channel phase.
      trace.phases.local_train_ms = collect_ms;
      trace.phases.channel_ms = 0.0;
      trace.phases.detect_ms = report.detect_ms;
      trace.phases.aggregate_ms = report.aggregate_ms;
      trace.phases.ledger_ms = report.ledger_ms;
      trace.net = net_before.delta_since();
      trace.has_net = true;
      recorder->record(trace);
    }
    if (round_callback_) {
      round_callback_(result, global_model_->flatten_parameters());
    }
    results_.push_back(std::move(result));

    next_round_ = r + 1;

    // Rotation handoff: the summary already named the successor; this
    // node rejoins the round loop as a follower and the successor assumes
    // the role once it holds block r committed (chain-head handoff).
    if (next_executor != self) {
      executor_index_ = next_executor;
      util::log_info() << "net: server " << endpoint_->address()
                       << " hands the executor role to server "
                       << next_executor << " for round " << r + 1;
      return;
    }
  }
  if (stop_.load(std::memory_order_relaxed)) return;
  done_ = true;

  // Dissolve the federation (dead workers already exited on their own).
  for (std::uint32_t i = 0; i < topology_.workers; ++i) {
    if (dead_workers_.count(i) != 0) continue;
    try {
      endpoint_->send_msg(topology_.worker_key(i), MessageType::kLeave,
                          LeaveMsg{endpoint_->address(), "training complete"});
    } catch (const std::exception&) {
      // A worker that already dropped its connection is fine to skip.
    }
  }
  for (std::uint32_t j = 0; j < topology_.servers; ++j) {
    if (j == config_.server_index) continue;
    try {
      endpoint_->send_msg(topology_.server_key(j), MessageType::kLeave,
                          LeaveMsg{endpoint_->address(), "training complete"});
    } catch (const std::exception&) {
    }
  }
}

void ServerNode::run_follower() {
  auto& metrics = NetMetrics::global();
  // A degraded round legitimately silences this link for a full phase
  // (the executor waiting out its collect deadline) and, when our slice
  // was lost, a second one (the slice wait) — so only three phases of
  // unbroken silence mean the federation is actually gone. Under failover
  // the budget stretches to eight: a crashed-and-recovering server hears
  // nothing until the transport revives it.
  const auto silence_budget =
      (config_.failover ? 8 : 3) * config_.timeouts.phase;
  // Executor-progress deadline: a summary or proposal should arrive at
  // least once per round; two phases plus a liveness window absorb the
  // slowest degraded round without false-firing the election.
  const auto progress_budget =
      2 * config_.timeouts.phase + config_.timeouts.liveness;
  // With a runtime executor role the follower must wake often enough to
  // run the progress check; without one the old one-phase nap is cheaper.
  const auto recv_wait = (config_.failover || config_.rotate_executor)
                             ? config_.timeouts.heartbeat
                             : config_.timeouts.phase;
  auto last_traffic = std::chrono::steady_clock::now();
  auto last_progress = last_traffic;
  while (!leave_received_ && !stop_.load(std::memory_order_relaxed)) {
    if (is_executor()) return;  // elected (or handed off) mid-drain
    const auto now = std::chrono::steady_clock::now();
    if (now - last_traffic > silence_budget) {
      util::log_warn() << "net: server " << endpoint_->address()
                       << " timed out waiting for traffic, exiting";
      done_ = true;
      return;
    }
    if (config_.failover && replicated_ && !election_muted_ &&
        now - last_progress > progress_budget) {
      if (run_election()) return;
      last_progress = std::chrono::steady_clock::now();
    }
    auto env = endpoint_->recv(recv_wait);
    if (!env) continue;
    last_traffic = std::chrono::steady_clock::now();
    if (election_muted_) {
      // The federation is talking to us again: the demotion-era silence
      // is over, re-arm the election clock from scratch.
      election_muted_ = false;
      last_progress = last_traffic;
    }
    if (env->type == MessageType::kGradientUpload) {
      auto msg = decode_payload<GradientUploadMsg>(env->payload);
      if (msg.round >= next_round_) {
        pending_uploads_[msg.round][msg.worker] = std::move(msg);
      } else {
        metrics.late_uploads->inc();
      }
      note_handled(tracer_, *env, last_traffic);
    } else {
      if (env->type == MessageType::kRoundSummary ||
          env->type == MessageType::kBlockProposal) {
        last_progress = last_traffic;  // the executor is making progress
      }
      handle_control(*env);
    }
    // Run every round whose summary has arrived, strictly in order.
    while (!pending_summaries_.empty() && !leave_received_ &&
           !stop_.load(std::memory_order_relaxed)) {
      auto it = pending_summaries_.begin();
      if (it->first < next_round_) {  // stale duplicate
        summary_sender_.erase(it->first);
        pending_summaries_.erase(it);
        continue;
      }
      if (it->first > next_round_) {
        // A summary went missing. With failover the replica heals itself:
        // replay the committed blocks it skipped from whoever sent the
        // newer summary (the live executor). Without it the replica can
        // never rejoin the deterministic sequence.
        if (config_.failover && replicated_ && !diverged_) {
          const auto sender = summary_sender_.find(it->first);
          const NodeKey target = sender != summary_sender_.end()
                                     ? sender->second
                                     : topology_.lead_key();
          if (!request_chain_sync(target)) break;  // rate-limited / timeout
          continue;  // the sync may have advanced next_round_
        }
        if (!diverged_) {
          diverged_ = true;
          util::log_warn() << "net: server " << endpoint_->address()
                           << " missed summary for round " << next_round_
                           << ", replica diverged";
        }
        next_round_ = it->first;
      }
      const RoundSummaryMsg summary = std::move(it->second);
      const auto sender = summary_sender_.find(summary.round);
      const NodeKey executor = sender != summary_sender_.end()
                                   ? sender->second
                                   : topology_.lead_key();
      summary_sender_.erase(summary.round);
      pending_summaries_.erase(summary.round);
      process_summary(summary, executor);
      pending_uploads_.erase(pending_uploads_.begin(),
                             pending_uploads_.upper_bound(summary.round));
      next_round_ = summary.round + 1;
      last_progress = std::chrono::steady_clock::now();
      // Every block this replica has now sealed can be checked against
      // the executor's proposal and endorsed (or exposed as a fork).
      if (replicated_) follower_vote_on_proposals();
      if (summary.next_executor == config_.server_index && !diverged_ &&
          next_round_ < config_.rounds) {
        // Chain-head handoff: assume the role only once block r is
        // committed locally, so the chain cannot fork across a rotation.
        // A failed wait leaves the executor unknown; the election (or the
        // old executor re-driving) resolves it.
        if (replicated_ && await_handoff_commit(summary.round)) {
          util::log_info() << "net: server " << endpoint_->address()
                           << " takes the executor role for round "
                           << next_round_ << " (rotation handoff)";
          executor_index_ = config_.server_index;
          return;
        }
        executor_index_ = kUnknownExecutor;
        continue;
      }
      if (summary.next_executor < topology_.servers) {
        executor_index_ = summary.next_executor;
      }
    }
    if (replicated_) follower_vote_on_proposals();
  }
  if (leave_received_) done_ = true;
}

void ServerNode::follower_vote_on_proposals() {
  while (!pending_proposals_.empty()) {
    const auto it = pending_proposals_.begin();
    if (diverged_) {
      // A diverged replica skipped engine rounds; it can no longer attest
      // blocks it never sealed. Dropping the proposal (instead of voting
      // no) keeps the fault crash-shaped: the executor counts a missing
      // vote, not a contradiction.
      pending_proposals_.erase(it);
      continue;
    }
    if (replicated_->committed(it->first)) {
      // A re-proposal of a block this replica already holds committed (a
      // takeover executor rebuilding its certificate): answer with a
      // fresh vote signed over the proposed header, without touching the
      // committed local entry. Skipping instead would starve the new
      // executor's certificate forever — its propose() cleared the votes.
      const BlockProposalMsg proposal = std::move(it->second);
      pending_proposals_.erase(it);
      const chain::SealedBlockHeader* own =
          replicated_->sealed(proposal.block_index);
      if (own != nullptr && own->header.block_hash == proposal.block_hash) {
        BlockVoteMsg out;
        out.round = proposal.round;
        out.block_index = proposal.block_index;
        out.block_hash = proposal.block_hash;
        out.vote = replicated_->registry().sign(
            replicated_->self(), proposal.header().canonical_payload());
        send_to_other_servers(MessageType::kBlockVote, out, proposal.round);
      }
      continue;
    }
    if (it->first >= engine_->ledger().block_count()) break;  // not sealed yet
    const BlockProposalMsg proposal = std::move(it->second);
    pending_proposals_.erase(it);
    const std::optional<chain::Signature> vote = replicated_->verify_and_vote(
        proposal.header(), proposal.executor_sig, proposal.records);
    if (!vote) {
      // The executor proposed a block this replica's deterministic ledger
      // did not produce: a fork, by construction the strongest Byzantine
      // signal the protocol can emit. Capture everyone's recent events
      // before unwinding.
      tracer_.note(obs::FlightEventKind::kLedgerFork,
                   proposal.executor_sig.signer,
                   static_cast<std::uint8_t>(MessageType::kBlockProposal),
                   proposal.round);
      obs::FlightRegistry::global().dump("ledger_fork");
      throw std::runtime_error(
          "server " + std::to_string(endpoint_->address()) +
          ": proposed block " + std::to_string(proposal.block_index) +
          " contradicts the local replica ledger (fork)");
    }
    BlockVoteMsg out;
    out.round = proposal.round;
    out.block_index = proposal.block_index;
    out.block_hash = proposal.block_hash;
    out.vote = *vote;
    // Votes go to every server, not just the executor: each replica folds
    // the whole federation's endorsements into its own certificate, so
    // any survivor can serve proofs and chain syncs.
    send_to_other_servers(MessageType::kBlockVote, out, proposal.round);
    drain_pending_votes(proposal.block_index);
  }
}

void ServerNode::apply_block_vote(const BlockVoteMsg& msg) {
  const chain::SealedBlockHeader* entry = replicated_->sealed(msg.block_index);
  if (entry == nullptr || entry->header.block_hash == chain::Digest{}) {
    // The vote raced ahead of this replica's own endorsement/proposal:
    // park it until the entry exists.
    pending_votes_[msg.block_index].push_back(msg);
    return;
  }
  try {
    replicated_->record_vote(msg.block_index, msg.block_hash, msg.vote);
  } catch (const std::exception& e) {
    // A validly signed vote for a *different* block hash at this index:
    // some replica sealed a contradicting history.
    tracer_.note(obs::FlightEventKind::kLedgerFork, msg.vote.signer,
                 static_cast<std::uint8_t>(MessageType::kBlockVote),
                 msg.round);
    obs::FlightRegistry::global().dump("ledger_fork");
    throw std::runtime_error("server " + std::to_string(endpoint_->address()) +
                             ": block vote for round " +
                             std::to_string(msg.round) +
                             " exposes a ledger fork: " + e.what());
  }
}

void ServerNode::drain_pending_votes(std::uint64_t block_index) {
  const auto it = pending_votes_.find(block_index);
  if (it == pending_votes_.end()) return;
  std::vector<BlockVoteMsg> votes = std::move(it->second);
  pending_votes_.erase(it);
  for (const BlockVoteMsg& vote : votes) apply_block_vote(vote);
}

bool ServerNode::await_ledger_commit(std::uint64_t r) {
  const auto deadline =
      std::chrono::steady_clock::now() + config_.timeouts.phase;
  while (!replicated_->committed(r) &&
         !stop_.load(std::memory_order_relaxed)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      const chain::SealedBlockHeader* sealed = replicated_->sealed(r);
      const std::uint64_t votes =
          sealed ? 1 + sealed->votes.size() : 0;  // executor counts itself
      if (config_.failover) {
        // No votes arrived within the phase: this executor is the cut-off
        // side (crashed transport, partition) — the followers already hold
        // the round summary and will elect a successor to re-drive r.
        // Step down instead of killing the run. The engine here is one
        // round ahead of the committed chain (block r sealed but
        // unendorsed), so mark the replica diverged: rejoin-by-replay
        // heals it if connectivity returns. Mirrors the worker-quorum
        // demote above, including forgetting partition-tainted liveness
        // judgments and muting elections until an envelope proves the
        // network is back.
        util::log_warn() << "net: server " << endpoint_->address()
                         << " ledger commit for round " << r
                         << " below quorum (" << votes << " of "
                         << replicated_->quorum()
                         << " endorsements), stepping down as executor";
        diverged_ = true;
        dead_workers_.clear();
        revive_pending_.clear();
        last_seen_.clear();
        acked_round_.clear();
        executor_index_ = kUnknownExecutor;
        election_muted_ = true;
        return false;
      }
      tracer_.note(obs::FlightEventKind::kQuorumAbort, obs::kNoFlightPeer,
                   static_cast<std::uint8_t>(MessageType::kBlockVote), r,
                   votes);
      obs::FlightRegistry::global().dump("quorum_abort");
      throw std::runtime_error(
          "server " + std::to_string(endpoint_->address()) + ": round " +
          std::to_string(r) + " ledger commit below quorum (" +
          std::to_string(votes) + " of " +
          std::to_string(replicated_->quorum()) + " endorsements)");
    }
    auto env = endpoint_->recv(left);
    if (!env) continue;
    if (env->type == MessageType::kGradientUpload) {
      const auto handle_start = std::chrono::steady_clock::now();
      lead_handle_upload(decode_payload<GradientUploadMsg>(env->payload), r,
                         nullptr);
      note_handled(tracer_, *env, handle_start);
    } else {
      handle_control(*env);
    }
  }
  return true;
}

void ServerNode::process_summary(const RoundSummaryMsg& summary,
                                 NodeKey executor) {
  const std::uint64_t r = summary.round;
  const std::uint32_t j = config_.server_index;

  bool complete = !diverged_;
  if (complete) {
    // Grace-wait for counted uploads that are still in flight behind the
    // summary (the executor saw them; this replica's copies may be
    // delayed).
    const auto deadline =
        std::chrono::steady_clock::now() + config_.timeouts.phase;
    while (!leave_received_ && !stop_.load(std::memory_order_relaxed)) {
      const auto& slots = pending_uploads_[r];
      const bool missing =
          std::any_of(summary.counted.begin(), summary.counted.end(),
                      [&](std::uint32_t w) { return slots.count(w) == 0; });
      if (!missing) break;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        complete = false;
        break;
      }
      auto env = endpoint_->recv(left);
      if (!env) continue;
      if (env->type == MessageType::kGradientUpload) {
        auto msg = decode_payload<GradientUploadMsg>(env->payload);
        if (msg.round >= r) {
          pending_uploads_[msg.round][msg.worker] = std::move(msg);
        }
      } else {
        handle_control(*env);  // later summaries buffer for the run loop
      }
    }
    if (leave_received_ || stop_.load(std::memory_order_relaxed)) return;
  }

  SliceAggregateMsg out;
  out.round = r;
  out.server_index = j;
  out.offset = engine_->plan().offset(j);
  if (complete) {
    // Feed the engine exactly the executor's counted set; uploads this
    // replica received beyond it are discarded, workers not listed become
    // absent (uncertain) — byte-identical inputs to the executor's.
    auto& slots = pending_uploads_[r];
    std::vector<GradientUploadMsg> msgs;
    msgs.reserve(summary.counted.size());
    for (std::uint32_t w : summary.counted) msgs.push_back(std::move(slots[w]));
    const std::vector<fl::Upload> uploads =
        canonicalize_uploads(msgs, topology_.workers);
    const core::RoundReport report = engine_->process_round(uploads);

    // This replica's slice of the aggregated gradient — the paper's
    // polycentric server->lead traffic (Sec. 3.2).
    const std::span<const float> slice =
        engine_->plan().slice(report.global_gradient, j);
    out.complete = 1;
    out.values.assign(slice.begin(), slice.end());

    // θ replica (rotation/failover): the same gradient step the executor
    // applies — bit-identical float ops, so any server can take over the
    // executor role with the executor's exact parameters.
    if (global_model_) {
      fl::apply_gradient_step(*global_model_, report.global_gradient,
                              config_.global_learning_rate);
      theta_round_ = r + 1;
    }
  } else {
    // A counted upload never reached this replica, so it cannot reproduce
    // the executor's engine inputs. Its state is now behind; it answers
    // with an empty incomplete slice and lets the executor count the gap
    // (with failover on, the next summary triggers rejoin-by-replay).
    if (!diverged_) {
      diverged_ = true;
      util::log_warn() << "net: server " << endpoint_->address()
                       << " lacks counted uploads for round " << r
                       << ", replica diverged";
    }
    out.complete = 0;
  }
  try {
    traced_send(*endpoint_, tracer_, executor, MessageType::kSliceAggregate,
                out, r);
  } catch (const std::exception& e) {
    util::log_warn() << "net: server " << endpoint_->address()
                     << " failed to send slice for round " << r << ": "
                     << e.what();
  }
}

void ServerNode::note_broadcast_ack(NodeKey worker, std::uint64_t round) {
  const auto [it, inserted] = acked_round_.try_emplace(worker, round);
  if (!inserted && it->second < round) it->second = round;
}

const ModelBroadcastMsg& ServerNode::broadcast_for(
    std::uint32_t worker, const ModelBroadcastMsg& dense,
    std::span<const float> theta,
    std::map<std::uint64_t, std::optional<ModelBroadcastMsg>>& delta_cache) {
  const auto codec_it = peer_broadcast_codec_.find(worker);
  if (codec_it == peer_broadcast_codec_.end() ||
      codec_it->second != fl::Codec::kDelta) {
    return dense;
  }
  const auto ack_it = acked_round_.find(worker);
  if (ack_it == acked_round_.end()) return dense;  // never acked: re-base
  const std::uint64_t base = ack_it->second;
  auto cache_it = delta_cache.find(base);
  if (cache_it == delta_cache.end()) {
    // First worker basing on `base` this round: build (or decline) the
    // delta once and cache the decision for the rest of the roster.
    std::optional<ModelBroadcastMsg> built;
    const auto hist_it = broadcast_history_.find(base);
    if (hist_it != broadcast_history_.end() &&
        hist_it->second.size() == theta.size()) {
      fl::SparseVector delta = fl::delta_compress(hist_it->second, theta);
      // Break-even on parameter payload: 5-9 bytes per sparse entry
      // (varint index + f32) against 4 per dense param.
      if (!config_.compression.delta_dense_fallback ||
          delta.wire_bytes() < theta.size() * sizeof(float)) {
        ModelBroadcastMsg msg;
        msg.round = dense.round;
        msg.codec = static_cast<std::uint8_t>(fl::Codec::kDelta);
        msg.base_round = base;
        msg.delta = std::move(delta);
        built = std::move(msg);
      }
    }
    cache_it = delta_cache.emplace(base, std::move(built)).first;
  }
  return cache_it->second ? *cache_it->second : dense;
}

template <typename Msg>
void ServerNode::send_to_other_servers(MessageType type, const Msg& msg,
                                       std::uint64_t round) {
  for (std::uint32_t j = 0; j < topology_.servers; ++j) {
    if (j == config_.server_index) continue;
    try {
      traced_send(*endpoint_, tracer_, topology_.server_key(j), type, msg,
                  round);
    } catch (const std::exception& e) {
      util::log_warn() << "net: server " << endpoint_->address()
                       << " failed to send " << message_type_name(type)
                       << " to server " << j << ": " << e.what();
    }
  }
}

std::uint32_t ServerNode::next_live_server(std::uint32_t self) const {
  for (std::uint32_t step = 1; step <= topology_.servers; ++step) {
    const std::uint32_t j = (self + step) % topology_.servers;
    if (j == self) break;
    if (dead_servers_.count(j) == 0) return j;
  }
  return self;
}

chain::Digest ServerNode::committed_head() const {
  const std::size_t tip = replicated_->committed_count();
  if (tip == 0) return chain::Digest{};
  return replicated_->sealed(tip - 1)->header.block_hash;
}

void ServerNode::handle_view_change(const ViewChangeMsg& msg) {
  if (msg.proposer_index >= topology_.servers ||
      msg.proposer_index == config_.server_index) {
    return;
  }
  if (msg.sig.signer != topology_.server_key(msg.proposer_index) ||
      !replicated_->registry().verify(msg.sig, msg.canonical_payload())) {
    util::log_warn() << "net: server " << endpoint_->address()
                     << " rejects a view change with a bad signature from "
                        "server "
                     << msg.proposer_index;
    return;
  }
  // One grant per view, and never a grant for a view this node itself is
  // campaigning in — two same-view candidates granting each other would
  // elect two executors.
  if (msg.view <= granted_view_ || msg.view == proposed_view_) return;
  const std::uint64_t own_count = replicated_->committed_count();
  // Grant iff the proposer's committed chain subsumes ours: strictly
  // longer, or equal length with the identical head. An executor never
  // grants — it is, by definition, alive and making progress.
  const bool granted =
      !is_executor() && (msg.committed_count > own_count ||
                         (msg.committed_count == own_count &&
                          msg.head == committed_head()));
  ViewChangeVoteMsg vote;
  vote.round = msg.round;
  vote.view = msg.view;
  vote.proposer_index = msg.proposer_index;
  vote.voter_index = config_.server_index;
  vote.granted = granted ? 1 : 0;
  vote.committed_count = own_count;
  vote.head = committed_head();
  vote.sig =
      replicated_->registry().sign(replicated_->self(), vote.canonical_payload());
  try {
    traced_send(*endpoint_, tracer_,
                topology_.server_key(msg.proposer_index),
                MessageType::kViewChangeVote, vote, msg.round);
  } catch (const std::exception& e) {
    util::log_warn() << "net: server " << endpoint_->address()
                     << " failed to answer a view change: " << e.what();
  }
  if (!granted) return;
  granted_view_ = msg.view;
  view_ = std::max(view_, msg.view);
  // dead_index == proposer_index is the proposer saying "I do not know
  // who died" (it was demoted, not watching) — nothing to record then.
  if (msg.dead_index < topology_.servers &&
      msg.dead_index != config_.server_index &&
      msg.dead_index != msg.proposer_index) {
    dead_servers_.insert(msg.dead_index);
  }
  executor_index_ = msg.proposer_index;
  util::log_info() << "net: server " << endpoint_->address()
                   << " granted view " << msg.view << " to server "
                   << msg.proposer_index;
}

bool ServerNode::run_election() {
  auto& metrics = NetMetrics::global();
  const std::uint32_t self = config_.server_index;
  // Whoever we were waiting on is the casualty. A demoted ex-executor
  // (executor_index_ == kUnknownExecutor) does not know who is in charge,
  // so it reports itself — the sentinel grantors ignore.
  const std::uint32_t dead =
      executor_index_ == kUnknownExecutor ? self : executor_index_;
  if (dead != self) dead_servers_.insert(dead);
  executor_index_ = kUnknownExecutor;
  view_ = std::max(view_, granted_view_) + 1;

  std::vector<std::uint32_t> candidates;
  for (std::uint32_t j = 0; j < topology_.servers; ++j) {
    if (dead_servers_.count(j) == 0) candidates.push_back(j);
  }
  // Reputation-ranked backoff (Sec. 4.2 put to work): the most reputable
  // live server proposes first; ties break toward the lower index. Every
  // replica computes the same ranking from its replicated reputation
  // state, so the backoff slots rarely collide.
  const auto rep_of = [this](std::uint32_t j) {
    const auto& members = engine_->server_members();
    return j < members.size()
               ? engine_->reputation().reputation(members[j])
               : 0.0;
  };
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     const double ra = rep_of(a), rb = rep_of(b);
                     if (ra != rb) return ra > rb;
                     return a < b;
                   });
  std::size_t rank = 0;
  while (rank < candidates.size() && candidates[rank] != self) ++rank;
  const auto backoff = rank * config_.timeouts.liveness;
  const auto started = std::chrono::steady_clock::now();
  const auto deadline = started + 2 * config_.timeouts.phase;
  bool proposed = false;
  std::size_t grants = 0;
  election_votes_.clear();
  util::log_warn() << "net: server " << endpoint_->address()
                   << " starts an election for view " << view_
                   << " (executor " << dead << " silent, rank " << rank
                   << ")";

  while (!stop_.load(std::memory_order_relaxed)) {
    // A better-ranked candidate won while we were waiting our slot (the
    // grant re-homed executor_index_ via handle_view_change).
    if (executor_index_ != kUnknownExecutor) return is_executor();
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      tracer_.note(obs::FlightEventKind::kQuorumAbort, obs::kNoFlightPeer,
                   static_cast<std::uint8_t>(MessageType::kViewChange),
                   next_round_, grants);
      obs::FlightRegistry::global().dump("view_change_abort");
      throw std::runtime_error(
          "server " + std::to_string(endpoint_->address()) +
          ": view change for round " + std::to_string(next_round_) +
          " below quorum (" + std::to_string(grants) + " of " +
          std::to_string(replicated_->quorum()) + " grants)");
    }
    if (!proposed && now - started >= backoff) {
      proposed = true;
      proposed_view_ = view_;
      grants = 1;  // our own
      ViewChangeMsg msg;
      msg.round = next_round_;
      msg.view = view_;
      msg.proposer_index = self;
      msg.dead_index = dead;
      msg.committed_count = replicated_->committed_count();
      msg.head = committed_head();
      msg.sig = replicated_->registry().sign(replicated_->self(),
                                             msg.canonical_payload());
      send_to_other_servers(MessageType::kViewChange, msg, next_round_);
    }
    // Fold in the grant/nack replies handle_control parked for us.
    std::vector<ViewChangeVoteMsg> votes;
    votes.swap(election_votes_);
    for (const ViewChangeVoteMsg& vote : votes) {
      if (!proposed || vote.view != view_ || vote.proposer_index != self ||
          vote.voter_index >= topology_.servers ||
          vote.voter_index == self ||
          vote.sig.signer != topology_.server_key(vote.voter_index) ||
          !replicated_->registry().verify(vote.sig,
                                          vote.canonical_payload())) {
        continue;
      }
      if (vote.granted != 0) {
        ++grants;
        continue;
      }
      if (vote.committed_count > replicated_->committed_count()) {
        // The nack carries a longer committed chain: we are behind, not
        // them. Sync up, then re-campaign in a fresh view.
        if (request_chain_sync(topology_.server_key(vote.voter_index))) {
          view_ = std::max(view_, granted_view_) + 1;
          proposed = false;
          grants = 0;
        }
      }
    }
    if (proposed && grants >= replicated_->quorum()) {
      metrics.view_changes->inc();
      metrics.election_ms->observe(elapsed_ms(started));
      tracer_.note(obs::FlightEventKind::kViewChange,
                   topology_.server_key(dead),
                   static_cast<std::uint8_t>(MessageType::kViewChange),
                   next_round_, view_);
      util::log_warn() << "net: server " << endpoint_->address()
                       << " won the election for view " << view_ << " with "
                       << grants << " grants, taking over as executor";
      executor_index_ = self;
      // Re-propose every block past the committed tip: the dead executor
      // may have sealed (and this replica endorsed) blocks whose quorum
      // certificate it never finished assembling. propose() re-signs and
      // restarts vote collection; the followers answer through the
      // committed-re-vote path if they already hold the block committed.
      const std::uint64_t blocks = engine_->ledger().block_count();
      if (blocks > 0) {
        for (std::uint64_t b = std::min<std::uint64_t>(
                 replicated_->committed_count(), blocks - 1);
             b < blocks; ++b) {
          const chain::SealedBlockHeader& entry = replicated_->propose(b);
          BlockProposalMsg proposal;
          proposal.round = b;
          proposal.block_index = entry.header.index;
          proposal.previous_hash = entry.header.previous_hash;
          proposal.merkle_root = entry.header.merkle_root;
          proposal.block_hash = entry.header.block_hash;
          proposal.executor_sig = entry.executor_sig;
          proposal.records = engine_->ledger().block(b).records;
          send_to_other_servers(MessageType::kBlockProposal, proposal, b);
          drain_pending_votes(b);
        }
      }
      next_round_ = engine_->round();
      return true;
    }
    auto env = endpoint_->recv(config_.timeouts.heartbeat);
    if (!env) continue;
    if (env->type == MessageType::kGradientUpload) {
      auto msg = decode_payload<GradientUploadMsg>(env->payload);
      if (msg.round >= next_round_) {
        pending_uploads_[msg.round][msg.worker] = std::move(msg);
      } else {
        metrics.late_uploads->inc();
      }
      note_handled(tracer_, *env, std::chrono::steady_clock::now());
      continue;
    }
    handle_control(*env);
    if (env->type == MessageType::kRoundSummary &&
        env->from >= topology_.workers) {
      // The "dead" executor spoke: it was slow, not gone. Stand down and
      // let run_follower process the summary.
      executor_index_ = env->from - topology_.workers;
      return false;
    }
  }
  return false;
}

bool ServerNode::await_handoff_commit(std::uint64_t r) {
  const auto deadline =
      std::chrono::steady_clock::now() + config_.timeouts.phase;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (replicated_->committed(r)) return true;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      util::log_warn() << "net: server " << endpoint_->address()
                       << " handoff for round " << r
                       << " timed out waiting for the block to commit";
      return false;
    }
    auto env = endpoint_->recv(std::min(
        left, std::chrono::duration_cast<std::chrono::milliseconds>(
                  config_.timeouts.heartbeat)));
    if (env) {
      if (env->type == MessageType::kGradientUpload) {
        auto msg = decode_payload<GradientUploadMsg>(env->payload);
        if (msg.round >= next_round_) {
          pending_uploads_[msg.round][msg.worker] = std::move(msg);
        }
        note_handled(tracer_, *env, std::chrono::steady_clock::now());
      } else {
        handle_control(*env);
      }
    }
    follower_vote_on_proposals();
  }
  return false;
}

bool ServerNode::request_chain_sync(NodeKey target) {
  const auto now = std::chrono::steady_clock::now();
  if (now - last_sync_request_ < config_.timeouts.phase) return false;
  last_sync_request_ = now;
  ChainSyncRequestMsg req;
  req.round = next_round_;
  req.server_index = config_.server_index;
  // The committed prefix, not the engine's block count: the engine may
  // hold sealed-but-uncertified blocks whose certificates the dead
  // executor never finished — re-fetching those heals the cert gap too.
  req.from_block = replicated_->committed_count();
  try {
    traced_send(*endpoint_, tracer_, target, MessageType::kChainSyncRequest,
                req, next_round_);
  } catch (const std::exception& e) {
    util::log_warn() << "net: server " << endpoint_->address()
                     << " failed to request a chain sync: " << e.what();
    return false;
  }
  const auto deadline = now + config_.timeouts.phase;
  auto next_resend = now + config_.timeouts.heartbeat;
  while (!stop_.load(std::memory_order_relaxed)) {
    const auto tick = std::chrono::steady_clock::now();
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - tick);
    if (left.count() <= 0) {
      util::log_warn() << "net: server " << endpoint_->address()
                       << " chain sync from node " << target << " timed out";
      return false;
    }
    if (tick >= next_resend) {
      // Re-fire the request at heartbeat cadence: over a lossy transport
      // (or one that was still swallowing this node's sends when the
      // first copy went out) a single datagram can vanish, and waiting
      // out the whole phase for it strands the rejoin. Serving is
      // idempotent and stray duplicate responses are dropped upstream.
      next_resend = tick + config_.timeouts.heartbeat;
      try {
        traced_send(*endpoint_, tracer_, target,
                    MessageType::kChainSyncRequest, req, next_round_);
      } catch (const std::exception&) {
      }
    }
    auto env = endpoint_->recv(std::min<std::chrono::milliseconds>(
        left, std::chrono::duration_cast<std::chrono::milliseconds>(
                  config_.timeouts.heartbeat)));
    if (!env) continue;
    // Inbound traffic is the strongest signal the link just healed (a
    // recovering node's first delivered message marks the instant its
    // transport came back): pull the next re-send forward so the sync
    // lands while the cluster is still running, not a heartbeat later.
    next_resend = std::min(next_resend, std::chrono::steady_clock::now() +
                                            std::chrono::milliseconds(1));
    if (env->type == MessageType::kChainSyncResponse) {
      auto resp = decode_payload<ChainSyncResponseMsg>(env->payload);
      note_handled(tracer_, *env, std::chrono::steady_clock::now());
      return apply_chain_sync(resp);
    }
    if (env->type == MessageType::kGradientUpload) {
      auto msg = decode_payload<GradientUploadMsg>(env->payload);
      if (msg.round >= next_round_) {
        pending_uploads_[msg.round][msg.worker] = std::move(msg);
      }
      note_handled(tracer_, *env, std::chrono::steady_clock::now());
      continue;
    }
    handle_control(*env);
  }
  return false;
}

bool ServerNode::apply_chain_sync(const ChainSyncResponseMsg& resp) {
  if (resp.ok == 0) return false;
  auto& metrics = NetMetrics::global();
  const std::size_t committed_before = replicated_->committed_count();
  std::uint64_t replayed = 0;
  for (const SyncedBlock& sb : resp.blocks) {
    const std::uint64_t idx = sb.sealed.header.index;
    const std::uint64_t have = engine_->ledger().block_count();
    if (idx > have) {
      throw std::runtime_error("server " +
                               std::to_string(endpoint_->address()) +
                               ": chain sync skipped block " +
                               std::to_string(have));
    }
    if (idx == have) {
      // Rejoin-by-replay: re-run the committed records through the local
      // engine — reputation events, rewards, re-selection, and a re-sealed
      // byte-identical block (adopt_committed verifies the match).
      engine_->catch_up_block(sb.records);
      ++replayed;
    }
    replicated_->adopt_committed(sb.sealed);
  }
  if (global_model_ && resp.theta_round > theta_round_) {
    nn::restore_checkpoint(*global_model_, resp.theta);
    theta_round_ = resp.theta_round;
  }
  next_round_ = std::max(next_round_, engine_->round());
  pending_proposals_.erase(
      pending_proposals_.begin(),
      pending_proposals_.lower_bound(replicated_->committed_count()));
  pending_votes_.erase(
      pending_votes_.begin(),
      pending_votes_.lower_bound(replicated_->committed_count()));
  if (replayed > 0) {
    diverged_ = false;  // the replica is bit-identical again
    pending_uploads_.erase(pending_uploads_.begin(),
                           pending_uploads_.lower_bound(next_round_));
    metrics.server_rejoins->inc();
    tracer_.note(obs::FlightEventKind::kServerRejoin, obs::kNoFlightPeer,
                 static_cast<std::uint8_t>(MessageType::kChainSyncResponse),
                 next_round_, replayed);
    util::log_info() << "net: server " << endpoint_->address()
                     << " replayed " << replayed
                     << " committed block(s), resuming at round "
                     << next_round_;
  }
  return replayed > 0 || replicated_->committed_count() > committed_before;
}

void ServerNode::serve_chain_sync(const ChainSyncRequestMsg& req,
                                  NodeKey from) {
  ChainSyncResponseMsg resp;
  resp.round = req.round;
  resp.from_block = req.from_block;
  const std::uint64_t tip = replicated_->committed_count();
  // Only a replica sitting exactly on a round boundary can serve: its θ
  // checkpoint then corresponds to the committed prefix, so the rejoiner
  // lands in a consistent (blocks, θ) state.
  const bool can_serve = global_model_ != nullptr && !diverged_ &&
                         theta_round_ == tip && req.from_block <= tip;
  if (can_serve) {
    resp.ok = 1;
    for (std::uint64_t b = req.from_block; b < tip; ++b) {
      const chain::SealedBlockHeader* entry = replicated_->sealed(b);
      if (entry == nullptr) {  // should not happen below the committed tip
        resp.ok = 0;
        resp.blocks.clear();
        break;
      }
      resp.blocks.push_back(
          SyncedBlock{*entry, engine_->ledger().block(b).records});
    }
    if (resp.ok == 1) {
      resp.theta_round = theta_round_;
      resp.theta = nn::checkpoint_bytes(*global_model_, "chain-sync");
    }
  }
  try {
    traced_send(*endpoint_, tracer_, from, MessageType::kChainSyncResponse,
                resp, req.round);
  } catch (const std::exception& e) {
    util::log_warn() << "net: server " << endpoint_->address()
                     << " failed to serve a chain sync: " << e.what();
  }
}

}  // namespace fifl::net
