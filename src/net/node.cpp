#include "net/node.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "chain/sha256.hpp"
#include "core/round_common.hpp"
#include "nn/checkpoint.hpp"
#include "util/logging.hpp"

namespace fifl::net {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Snapshot of the global net counters, for per-round deltas.
struct CounterSnapshot {
  std::uint64_t bytes_tx, bytes_rx, msgs_tx, msgs_rx, frame_errors;

  static CounterSnapshot take() {
    NetMetrics& m = NetMetrics::global();
    return {m.bytes_tx->value(), m.bytes_rx->value(), m.msgs_tx->value(),
            m.msgs_rx->value(), m.frame_errors->value()};
  }

  obs::RoundTrace::NetStats delta_since() const {
    const CounterSnapshot now = take();
    return {now.bytes_tx - bytes_tx, now.bytes_rx - bytes_rx,
            now.msgs_tx - msgs_tx, now.msgs_rx - msgs_rx,
            now.frame_errors - frame_errors};
  }
};

}  // namespace

std::vector<NodeKey> Topology::server_keys() const {
  std::vector<NodeKey> keys(servers);
  for (std::uint32_t j = 0; j < servers; ++j) keys[j] = server_key(j);
  return keys;
}

std::vector<fl::Upload> canonicalize_uploads(
    std::span<const GradientUploadMsg> msgs, std::size_t workers) {
  std::vector<fl::Upload> uploads(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    uploads[i].worker = static_cast<chain::NodeId>(i);
    uploads[i].arrived = false;
  }
  for (const GradientUploadMsg& msg : msgs) {
    if (msg.worker >= workers) {
      util::log_warn() << "net: upload from unknown worker " << msg.worker
                       << " ignored";
      continue;
    }
    fl::Upload& u = uploads[msg.worker];
    u.samples = static_cast<std::size_t>(msg.samples);
    u.gradient = fl::Gradient(msg.gradient);
    u.arrived = true;
    u.ground_truth_attack = msg.ground_truth_attack != 0;
  }
  return uploads;
}

std::string parameter_hash(std::span<const float> params) {
  std::vector<std::uint8_t> bytes(params.size() * sizeof(float));
  if (!bytes.empty()) {
    std::memcpy(bytes.data(), params.data(), bytes.size());
  }
  return chain::to_hex(chain::sha256(bytes));
}

// ---------------------------------------------------------------------------
// WorkerNode
// ---------------------------------------------------------------------------

WorkerNode::WorkerNode(std::unique_ptr<fl::Worker> worker,
                       std::unique_ptr<Endpoint> endpoint, Topology topology,
                       NodeTimeouts timeouts)
    : worker_(std::move(worker)), endpoint_(std::move(endpoint)),
      topology_(topology), timeouts_(timeouts) {
  if (!worker_ || !endpoint_) {
    throw std::invalid_argument("WorkerNode: null worker or endpoint");
  }
}

void WorkerNode::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  endpoint_->close();
}

void WorkerNode::run() {
  const NodeKey lead = topology_.lead_key();
  endpoint_->send_msg(lead, MessageType::kJoin,
                      JoinMsg{endpoint_->address(), NodeRole::kWorker});
  const auto join_deadline = std::chrono::steady_clock::now() + timeouts_.join;
  bool acked = false;
  while (!acked && !stop_.load(std::memory_order_relaxed)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        join_deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      throw std::runtime_error("WorkerNode " +
                               std::to_string(endpoint_->address()) +
                               ": join timed out");
    }
    auto env = endpoint_->recv(left);
    if (!env) continue;
    if (env->type == MessageType::kJoinAck) acked = true;
  }

  while (!stop_.load(std::memory_order_relaxed)) {
    auto env = endpoint_->recv(timeouts_.phase);
    if (!env) {
      // Idle timeout without a Leave: the federation went away.
      util::log_warn() << "net: worker " << endpoint_->address()
                       << " timed out waiting for traffic, exiting";
      break;
    }
    switch (env->type) {
      case MessageType::kModelBroadcast:
        handle_broadcast(decode_payload<ModelBroadcastMsg>(env->payload));
        break;
      case MessageType::kAssessmentResult: {
        const auto msg = decode_payload<AssessmentResultMsg>(env->payload);
        for (const WorkerAssessment& wa : msg.workers) {
          if (wa.worker == endpoint_->address()) {
            observed_rewards_.push_back(wa.reward);
          }
        }
        break;
      }
      case MessageType::kHeartbeat: {
        auto hb = decode_payload<HeartbeatMsg>(env->payload);
        if (hb.echo == 0) {
          endpoint_->send_msg(
              env->from, MessageType::kHeartbeat,
              HeartbeatMsg{endpoint_->address(), hb.token, 1});
        } else if (auto it = ping_sent_.find(hb.token);
                   it != ping_sent_.end()) {
          NetMetrics::global().rtt_ms->observe(elapsed_ms(it->second));
          ping_sent_.erase(it);
        }
        break;
      }
      case MessageType::kLeave:
        return;
      default:
        break;  // stray control traffic
    }
  }
}

void WorkerNode::handle_broadcast(const ModelBroadcastMsg& msg) {
  const nn::ParsedCheckpoint parsed = nn::parse_checkpoint(msg.checkpoint);
  fl::Upload upload = worker_->make_upload(parsed.parameters);

  GradientUploadMsg out;
  out.round = msg.round;
  out.worker = endpoint_->address();
  out.samples = upload.samples;
  out.ground_truth_attack = upload.ground_truth_attack ? 1 : 0;
  out.gradient.assign(upload.gradient.flat().begin(),
                      upload.gradient.flat().end());
  for (NodeKey server : topology_.server_keys()) {
    endpoint_->send_msg(server, MessageType::kGradientUpload, out);
  }
  // Ping the lead once per round; the echo feeds net.rtt_ms.
  ping_sent_[msg.round] = std::chrono::steady_clock::now();
  endpoint_->send_msg(topology_.lead_key(), MessageType::kHeartbeat,
                      HeartbeatMsg{endpoint_->address(), msg.round, 0});
}

// ---------------------------------------------------------------------------
// ServerNode
// ---------------------------------------------------------------------------

ServerNode::ServerNode(ServerNodeConfig config,
                       std::unique_ptr<core::FiflEngine> engine,
                       std::unique_ptr<nn::Sequential> global_model,
                       std::unique_ptr<Endpoint> endpoint, Topology topology)
    : config_(config), engine_(std::move(engine)),
      global_model_(std::move(global_model)), endpoint_(std::move(endpoint)),
      topology_(topology) {
  if (!engine_ || !endpoint_) {
    throw std::invalid_argument("ServerNode: null engine or endpoint");
  }
  if (is_lead() != (global_model_ != nullptr)) {
    throw std::invalid_argument(
        "ServerNode: exactly the lead owns the global model");
  }
  if (config_.server_index >= topology_.servers) {
    throw std::invalid_argument("ServerNode: server index out of range");
  }
}

void ServerNode::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  endpoint_->close();
}

void ServerNode::run() {
  if (is_lead()) {
    run_lead();
  } else {
    run_follower();
  }
}

void ServerNode::handle_control(const Envelope& envelope) {
  switch (envelope.type) {
    case MessageType::kJoin: {
      const auto join = decode_payload<JoinMsg>(envelope.payload);
      if (is_lead()) {
        if (join.role == NodeRole::kWorker) {
          ++joined_workers_;
        } else {
          ++joined_servers_;
        }
        endpoint_->send_msg(
            envelope.from, MessageType::kJoinAck,
            JoinAckMsg{join.node, topology_.workers, topology_.servers,
                       global_model_ ? global_model_->parameter_count() : 0,
                       config_.rounds});
      }
      break;
    }
    case MessageType::kHeartbeat: {
      auto hb = decode_payload<HeartbeatMsg>(envelope.payload);
      if (hb.echo == 0) {
        endpoint_->send_msg(envelope.from, MessageType::kHeartbeat,
                            HeartbeatMsg{endpoint_->address(), hb.token, 1});
      }
      break;
    }
    case MessageType::kSliceAggregate: {
      auto slice = decode_payload<SliceAggregateMsg>(envelope.payload);
      const std::uint64_t round = slice.round;
      pending_slices_[round][slice.server_index] = std::move(slice);
      break;
    }
    case MessageType::kLeave:
      leave_received_ = true;
      break;
    default:
      break;
  }
}

void ServerNode::collect_uploads(
    std::uint64_t round, std::map<std::uint32_t, GradientUploadMsg>& slots,
    std::chrono::steady_clock::time_point deadline) {
  if (auto it = pending_uploads_.find(round); it != pending_uploads_.end()) {
    slots = std::move(it->second);
    pending_uploads_.erase(it);
  }
  while (slots.size() < topology_.workers && !leave_received_ &&
         !stop_.load(std::memory_order_relaxed)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) break;  // missing workers become uncertain events
    auto env = endpoint_->recv(left);
    if (!env) continue;
    if (env->type == MessageType::kGradientUpload) {
      auto msg = decode_payload<GradientUploadMsg>(env->payload);
      if (msg.round == round) {
        slots[msg.worker] = std::move(msg);
      } else if (msg.round > round) {
        pending_uploads_[msg.round][msg.worker] = std::move(msg);
      }  // uploads for past rounds arrived after their deadline: drop
    } else {
      handle_control(*env);
    }
  }
}

void ServerNode::run_follower() {
  const NodeKey lead = topology_.lead_key();
  endpoint_->send_msg(lead, MessageType::kJoin,
                      JoinMsg{endpoint_->address(), NodeRole::kServer});
  const auto join_deadline = std::chrono::steady_clock::now() + config_.timeouts.join;
  std::uint64_t rounds = 0;
  bool acked = false;
  while (!acked && !stop_.load(std::memory_order_relaxed)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        join_deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      throw std::runtime_error("ServerNode " +
                               std::to_string(endpoint_->address()) +
                               ": join timed out");
    }
    auto env = endpoint_->recv(left);
    if (!env) continue;
    if (env->type == MessageType::kJoinAck) {
      rounds = decode_payload<JoinAckMsg>(env->payload).rounds;
      acked = true;
    } else {
      handle_control(*env);
    }
  }

  for (std::uint64_t r = 0; r < rounds; ++r) {
    if (leave_received_ || stop_.load(std::memory_order_relaxed)) return;
    std::map<std::uint32_t, GradientUploadMsg> slots;
    collect_uploads(r, slots,
                    std::chrono::steady_clock::now() + config_.timeouts.phase);
    if (leave_received_ || stop_.load(std::memory_order_relaxed)) return;
    std::vector<GradientUploadMsg> msgs;
    msgs.reserve(slots.size());
    for (auto& [worker, msg] : slots) msgs.push_back(std::move(msg));
    const std::vector<fl::Upload> uploads =
        canonicalize_uploads(msgs, topology_.workers);
    const core::RoundReport report = engine_->process_round(uploads);

    // This replica's slice of the aggregated gradient — the paper's
    // polycentric server->lead traffic (Sec. 3.2).
    const std::uint32_t j = config_.server_index;
    const std::span<const float> slice =
        engine_->plan().slice(report.global_gradient, j);
    SliceAggregateMsg out;
    out.round = r;
    out.server_index = j;
    out.offset = engine_->plan().offset(j);
    out.values.assign(slice.begin(), slice.end());
    endpoint_->send_msg(lead, MessageType::kSliceAggregate, out);
  }

  // Stay reachable until the lead says goodbye, so its final sends never
  // hit a closed endpoint.
  while (!leave_received_ && !stop_.load(std::memory_order_relaxed)) {
    auto env = endpoint_->recv(config_.timeouts.phase);
    if (!env) break;
    handle_control(*env);
  }
}

void ServerNode::run_lead() {
  // Phase 0: wait for the full federation to join.
  const auto join_deadline = std::chrono::steady_clock::now() + config_.timeouts.join;
  while ((joined_workers_ < topology_.workers ||
          joined_servers_ + 1 < topology_.servers) &&
         !stop_.load(std::memory_order_relaxed)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        join_deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      throw std::runtime_error(
          "lead: join phase timed out (" + std::to_string(joined_workers_) +
          "/" + std::to_string(topology_.workers) + " workers, " +
          std::to_string(joined_servers_ + 1) + "/" +
          std::to_string(topology_.servers) + " servers)");
    }
    auto env = endpoint_->recv(left);
    if (env) handle_control(*env);
  }

  obs::RoundTraceRecorder* recorder =
      trace_recorder_ ? trace_recorder_ : &obs::RoundTraceRecorder::global();

  for (std::uint64_t r = 0; r < config_.rounds; ++r) {
    if (stop_.load(std::memory_order_relaxed)) return;
    const CounterSnapshot net_before = CounterSnapshot::take();
    const auto train_start = std::chrono::steady_clock::now();

    // Broadcast θ_t.
    ModelBroadcastMsg broadcast;
    broadcast.round = r;
    broadcast.checkpoint =
        nn::checkpoint_bytes(*global_model_, "round-" + std::to_string(r));
    for (std::uint32_t i = 0; i < topology_.workers; ++i) {
      endpoint_->send_msg(topology_.worker_key(i),
                          MessageType::kModelBroadcast, broadcast);
    }

    // Collect uploads (the networked analogue of local_train + channel).
    std::map<std::uint32_t, GradientUploadMsg> slots;
    collect_uploads(r, slots,
                    std::chrono::steady_clock::now() + config_.timeouts.phase);
    if (stop_.load(std::memory_order_relaxed)) return;
    const double collect_ms = elapsed_ms(train_start);

    std::vector<GradientUploadMsg> msgs;
    msgs.reserve(slots.size());
    for (auto& [worker, msg] : slots) msgs.push_back(std::move(msg));
    const std::vector<fl::Upload> uploads =
        canonicalize_uploads(msgs, topology_.workers);

    // Full pipeline on the lead's replica.
    const core::RoundReport report = engine_->process_round(uploads);

    // Gather the follower slices and check them bitwise against this
    // replica's result: any divergence means the deterministic-replica
    // invariant broke, which would silently fork the federation.
    const auto slice_deadline =
        std::chrono::steady_clock::now() + config_.timeouts.phase;
    while (pending_slices_[r].size() + 1 < topology_.servers &&
           !stop_.load(std::memory_order_relaxed)) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          slice_deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        throw std::runtime_error("lead: timed out waiting for slices of round " +
                                 std::to_string(r));
      }
      auto env = endpoint_->recv(left);
      if (!env) continue;
      if (env->type == MessageType::kGradientUpload) {
        auto msg = decode_payload<GradientUploadMsg>(env->payload);
        if (msg.round > r) pending_uploads_[msg.round][msg.worker] = std::move(msg);
      } else {
        handle_control(*env);
      }
    }
    for (std::uint32_t j = 1; j < topology_.servers; ++j) {
      const SliceAggregateMsg& slice = pending_slices_[r].at(j);
      const std::span<const float> own =
          engine_->plan().slice(report.global_gradient, j);
      if (slice.offset != engine_->plan().offset(j) ||
          slice.values.size() != own.size() ||
          !std::equal(own.begin(), own.end(), slice.values.begin())) {
        throw std::runtime_error("lead: server " + std::to_string(j) +
                                 " diverged from the replicated engine on round " +
                                 std::to_string(r));
      }
    }
    pending_slices_.erase(r);

    // θ ← θ − η·G̃ — identical float ops to Simulator::apply_round because
    // the engine's aggregation loop is the simulator's (and the follower
    // slices were just proven bitwise equal).
    fl::apply_gradient_step(*global_model_, report.global_gradient,
                            config_.global_learning_rate);

    // Publish the assessment + this round's sealed audit records.
    AssessmentResultMsg assessment;
    assessment.round = r;
    assessment.degraded = report.degraded ? 1 : 0;
    assessment.fairness = report.fairness;
    assessment.workers.reserve(topology_.workers);
    for (std::uint32_t i = 0; i < topology_.workers; ++i) {
      WorkerAssessment wa;
      wa.worker = i;
      wa.arrived = uploads[i].arrived ? 1 : 0;
      wa.accepted = report.detection.accepted[i] ? 1 : 0;
      wa.uncertain = report.detection.uncertain[i] ? 1 : 0;
      wa.score = report.detection.scores[i];
      wa.reputation = report.reputations[i];
      wa.contribution = report.contribution.contributions[i];
      wa.reward = report.rewards[i];
      assessment.workers.push_back(wa);
    }
    assessment.records = engine_->ledger().query(std::nullopt, r, std::nullopt);
    for (std::uint32_t i = 0; i < topology_.workers; ++i) {
      endpoint_->send_msg(topology_.worker_key(i),
                          MessageType::kAssessmentResult, assessment);
    }

    // Round bookkeeping: result row, trace, callback.
    NetRoundResult result;
    result.round = r;
    result.model_hash = parameter_hash(global_model_->flatten_parameters());
    result.degraded = report.degraded;
    result.fairness = report.fairness;
    result.reputations = report.reputations;
    result.rewards = report.rewards;
    core::RoundRecord record;
    core::summarize_report(report, uploads, record);
    result.accepted = record.accepted;
    result.rejected = record.rejected;
    result.uncertain = record.uncertain;

    if (recorder->enabled()) {
      obs::RoundTrace trace = core::make_round_trace(r, report, uploads);
      // The broadcast->collect window plays the role of local_train +
      // channel; the wire has no separate channel phase.
      trace.phases.local_train_ms = collect_ms;
      trace.phases.channel_ms = 0.0;
      trace.phases.detect_ms = report.detect_ms;
      trace.phases.aggregate_ms = report.aggregate_ms;
      trace.phases.ledger_ms = report.ledger_ms;
      trace.net = net_before.delta_since();
      trace.has_net = true;
      recorder->record(trace);
    }
    if (round_callback_) {
      round_callback_(result, global_model_->flatten_parameters());
    }
    results_.push_back(std::move(result));
  }

  // Dissolve the federation.
  for (std::uint32_t i = 0; i < topology_.workers; ++i) {
    try {
      endpoint_->send_msg(topology_.worker_key(i), MessageType::kLeave,
                          LeaveMsg{endpoint_->address(), "training complete"});
    } catch (const std::exception&) {
      // A worker that already dropped its connection is fine to skip.
    }
  }
  for (std::uint32_t j = 1; j < topology_.servers; ++j) {
    try {
      endpoint_->send_msg(topology_.server_key(j), MessageType::kLeave,
                          LeaveMsg{endpoint_->address(), "training complete"});
    } catch (const std::exception&) {
    }
  }
}

}  // namespace fifl::net
