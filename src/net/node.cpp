#include "net/node.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "chain/sha256.hpp"
#include "core/round_common.hpp"
#include "nn/checkpoint.hpp"
#include "obs/flight_recorder.hpp"
#include "util/logging.hpp"

namespace fifl::net {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Snapshot of the global net counters, for per-round deltas.
struct CounterSnapshot {
  std::uint64_t bytes_tx, bytes_rx, msgs_tx, msgs_rx, frame_errors;
  std::uint64_t late_uploads, send_retries, dropped_workers;
  std::array<std::uint64_t, kMessageTypeCount> tx_by_type;
  std::array<std::uint64_t, kMessageTypeCount> rx_by_type;

  static CounterSnapshot take() {
    NetMetrics& m = NetMetrics::global();
    CounterSnapshot s{};
    s.bytes_tx = m.bytes_tx->value();
    s.bytes_rx = m.bytes_rx->value();
    s.msgs_tx = m.msgs_tx->value();
    s.msgs_rx = m.msgs_rx->value();
    s.frame_errors = m.frame_errors->value();
    s.late_uploads = m.late_uploads->value();
    s.send_retries = m.send_retries->value();
    s.dropped_workers = m.dropped_workers->value();
    for (std::size_t i = 0; i < kMessageTypeCount; ++i) {
      s.tx_by_type[i] = m.bytes_tx_type[i]->value();
      s.rx_by_type[i] = m.bytes_rx_type[i]->value();
    }
    return s;
  }

  obs::RoundTrace::NetStats delta_since() const {
    const CounterSnapshot now = take();
    obs::RoundTrace::NetStats d;
    d.bytes_tx = now.bytes_tx - bytes_tx;
    d.bytes_rx = now.bytes_rx - bytes_rx;
    d.msgs_tx = now.msgs_tx - msgs_tx;
    d.msgs_rx = now.msgs_rx - msgs_rx;
    d.frame_errors = now.frame_errors - frame_errors;
    d.late_uploads = now.late_uploads - late_uploads;
    d.send_retries = now.send_retries - send_retries;
    d.dropped_workers = now.dropped_workers - dropped_workers;
    for (std::size_t i = 0; i < kMessageTypeCount; ++i) {
      const char* name = message_type_name(static_cast<MessageType>(i + 1));
      if (const std::uint64_t dt = now.tx_by_type[i] - tx_by_type[i]) {
        d.bytes_tx_by_type.emplace_back(name, dt);
      }
      if (const std::uint64_t dr = now.rx_by_type[i] - rx_by_type[i]) {
        d.bytes_rx_by_type.emplace_back(name, dr);
      }
    }
    return d;
  }
};

/// Token space for the worker liveness heartbeats, disjoint from the
/// per-round RTT ping tokens (which are round numbers).
constexpr std::uint64_t kLivenessTokenBase = 1ull << 63;

/// Sends one message under a fresh child span when tracing is on; the
/// disabled path is the plain send plus one pointer check. `parent_span`
/// links the send into the causal tree (0 = root of the round's tree).
template <typename Msg>
void traced_send(Endpoint& endpoint, const NodeTracer& tracer, NodeKey to,
                 MessageType type, const Msg& msg, std::uint64_t round,
                 std::uint64_t parent_span = 0) {
  if (!tracer.tracing()) {
    endpoint.send_msg(to, type, msg);
    return;
  }
  const obs::TraceContext ctx{round_trace_id(round),
                              next_span_id(tracer.node), parent_span};
  const std::uint64_t t0 = trace_now_us();
  endpoint.send_msg(to, type, msg, &ctx);
  tracer.span(obs::SpanKind::kSend, message_type_name(type), round, t0,
              trace_now_us() - t0, ctx, to);
  tracer.note(obs::FlightEventKind::kSend, to,
              static_cast<std::uint8_t>(type), round);
}

/// Recv-side bookkeeping for one handled envelope: the per-type
/// handle-time histogram always, a recv + handle span pair (and a
/// flight-ring note) when the envelope carried a trace context.
void note_handled(const NodeTracer& tracer, const Envelope& env,
                  std::chrono::steady_clock::time_point start) {
  const double ms = elapsed_ms(start);
  if (obs::Histogram* h = NetMetrics::global().handle_for(
          static_cast<std::uint8_t>(env.type))) {
    h->observe(ms);
  }
  if (!tracer.tracing() || !env.has_trace) return;
  const std::uint64_t round = env.trace.trace_id - 1;
  const std::uint64_t dur = static_cast<std::uint64_t>(ms * 1000.0);
  const std::uint64_t end = trace_now_us();
  const obs::TraceContext recv_ctx{env.trace.trace_id,
                                   next_span_id(tracer.node),
                                   env.trace.span_id};
  tracer.span(obs::SpanKind::kRecv, message_type_name(env.type), round,
              end - dur, 0, recv_ctx, env.from);
  const obs::TraceContext handle_ctx{env.trace.trace_id,
                                     next_span_id(tracer.node),
                                     recv_ctx.span_id};
  tracer.span(obs::SpanKind::kHandle, message_type_name(env.type), round,
              end - dur, dur, handle_ctx, env.from);
  tracer.note(obs::FlightEventKind::kRecv, env.from,
              static_cast<std::uint8_t>(env.type), round);
}

/// Lead round-phase bookkeeping: the phase histogram always, a phase
/// span (+ flight note) when tracing.
void note_phase(const NodeTracer& tracer, obs::Histogram* hist,
                const char* name, std::uint64_t round,
                std::chrono::steady_clock::time_point start) {
  const double ms = elapsed_ms(start);
  hist->observe(ms);
  if (!tracer.tracing()) return;
  const std::uint64_t dur = static_cast<std::uint64_t>(ms * 1000.0);
  const obs::TraceContext ctx{round_trace_id(round),
                              next_span_id(tracer.node), 0};
  tracer.span(obs::SpanKind::kPhase, name, round, trace_now_us() - dur, dur,
              ctx);
  tracer.note(obs::FlightEventKind::kPhase, obs::kNoFlightPeer, 0, round);
}

}  // namespace

std::vector<NodeKey> Topology::server_keys() const {
  std::vector<NodeKey> keys(servers);
  for (std::uint32_t j = 0; j < servers; ++j) keys[j] = server_key(j);
  return keys;
}

std::vector<fl::Upload> canonicalize_uploads(
    std::span<const GradientUploadMsg> msgs, std::size_t workers) {
  std::vector<fl::Upload> uploads(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    uploads[i].worker = static_cast<chain::NodeId>(i);
    uploads[i].arrived = false;
  }
  for (const GradientUploadMsg& msg : msgs) {
    if (msg.worker >= workers) {
      util::log_warn() << "net: upload from unknown worker " << msg.worker
                       << " ignored";
      continue;
    }
    fl::Upload& u = uploads[msg.worker];
    u.samples = static_cast<std::size_t>(msg.samples);
    // The single server-side densification point: sparse uploads become
    // dense gradients here, so the assessment pipeline (and every replica)
    // only ever sees the canonical dense form.
    u.gradient = msg.dense_gradient();
    u.arrived = true;
    u.ground_truth_attack = msg.ground_truth_attack != 0;
  }
  return uploads;
}

std::string parameter_hash(std::span<const float> params) {
  std::vector<std::uint8_t> bytes(params.size() * sizeof(float));
  if (!bytes.empty()) {
    std::memcpy(bytes.data(), params.data(), bytes.size());
  }
  return chain::to_hex(chain::sha256(bytes));
}

// ---------------------------------------------------------------------------
// WorkerNode
// ---------------------------------------------------------------------------

WorkerNode::WorkerNode(std::unique_ptr<fl::Worker> worker,
                       std::unique_ptr<Endpoint> endpoint, Topology topology,
                       NodeTimeouts timeouts, std::uint32_t supported_codecs,
                       WorkerAuditConfig audit)
    : worker_(std::move(worker)), endpoint_(std::move(endpoint)),
      topology_(topology), timeouts_(timeouts),
      supported_codecs_(supported_codecs), audit_(audit) {
  if (!worker_ || !endpoint_) {
    throw std::invalid_argument("WorkerNode: null worker or endpoint");
  }
  if (!fl::codec_in(supported_codecs_, fl::Codec::kDense)) {
    throw std::invalid_argument(
        "WorkerNode: codec mask must include kDense (negotiation fallback)");
  }
  tracer_ = NodeTracer::for_node(endpoint_->address());
}

void WorkerNode::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  endpoint_->close();
}

void WorkerNode::run() {
  const NodeKey lead = topology_.lead_key();
  JoinMsg join{endpoint_->address(), NodeRole::kWorker, supported_codecs_};
  std::uint64_t join_sent_us = 0;
  if (tracer_.tracing()) {
    // Advertise the trace feature and start the clock-sync handshake:
    // the JoinAck answers with the lead's clock, and half the measured
    // round trip estimates the one-way delay.
    join.features = kFeatureTrace;
    join_sent_us = trace_now_us();
    join.clock_us = join_sent_us;
  }
  traced_send(*endpoint_, tracer_, lead, MessageType::kJoin, join, 0);
  const auto join_deadline = std::chrono::steady_clock::now() + timeouts_.join;
  bool acked = false;
  while (!acked && !stop_.load(std::memory_order_relaxed)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        join_deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      throw std::runtime_error("WorkerNode " +
                               std::to_string(endpoint_->address()) +
                               ": join timed out");
    }
    auto env = endpoint_->recv(left);
    if (!env) continue;
    if (env->type == MessageType::kJoinAck) {
      const auto handle_start = std::chrono::steady_clock::now();
      const auto ack = decode_payload<JoinAckMsg>(env->payload);
      upload_codec_ = static_cast<fl::Codec>(ack.upload_codec);
      keep_fraction_ = ack.keep_fraction;
      total_rounds_ = ack.rounds;
      if (tracer_.tracing() && (ack.features & kFeatureTrace) != 0) {
        const std::uint64_t t1 = trace_now_us();
        const std::int64_t rtt = static_cast<std::int64_t>(t1 - join_sent_us);
        const std::int64_t skew = static_cast<std::int64_t>(ack.clock_us) +
                                  rtt / 2 - static_cast<std::int64_t>(t1);
        tracer_.clock(skew, rtt);
      }
      note_handled(tracer_, *env, handle_start);
      acked = true;
    }
  }

  // Event loop with a liveness side-channel: wake at the heartbeat
  // interval, ping the lead so it can tell "slow" from "dead", and exit
  // once nothing has been heard for a whole phase (the federation went
  // away, or this node was partitioned off for good).
  std::uint64_t liveness_token = kLivenessTokenBase;
  auto last_traffic = std::chrono::steady_clock::now();
  auto last_heartbeat = last_traffic;
  while (!stop_.load(std::memory_order_relaxed)) {
    const auto now = std::chrono::steady_clock::now();
    if (now - last_traffic > timeouts_.phase) {
      // Idle timeout without a Leave: the federation went away.
      util::log_warn() << "net: worker " << endpoint_->address()
                       << " timed out waiting for traffic, exiting";
      break;
    }
    if (now - last_heartbeat >= timeouts_.heartbeat) {
      last_heartbeat = now;
      try {
        endpoint_->send_msg(
            lead, MessageType::kHeartbeat,
            HeartbeatMsg{endpoint_->address(), liveness_token++, 0});
      } catch (const std::exception& e) {
        util::log_debug() << "net: worker " << endpoint_->address()
                          << " heartbeat failed: " << e.what();
      }
    }
    auto env = endpoint_->recv(timeouts_.heartbeat);
    if (!env) continue;
    last_traffic = std::chrono::steady_clock::now();
    switch (env->type) {
      case MessageType::kModelBroadcast:
        handle_broadcast(decode_payload<ModelBroadcastMsg>(env->payload),
                         env->has_trace ? env->trace.span_id : 0);
        note_handled(tracer_, *env, last_traffic);
        break;
      case MessageType::kAssessmentResult: {
        const auto msg = decode_payload<AssessmentResultMsg>(env->payload);
        for (const WorkerAssessment& wa : msg.workers) {
          if (wa.worker == endpoint_->address()) {
            observed_rewards_.push_back(wa.reward);
          }
        }
        // Audit the round that just closed: ask the lead for a Merkle
        // inclusion proof of this worker's reputation record. The final
        // round is skipped — the lead tears the federation down right
        // after the last assessment, so the reply window only exists
        // while another round is being driven.
        if (audit_.enabled && msg.round + 1 < total_rounds_) {
          try {
            traced_send(*endpoint_, tracer_, lead, MessageType::kAuditQuery,
                        AuditQueryMsg{
                            msg.round, endpoint_->address(), msg.round,
                            static_cast<std::uint8_t>(
                                chain::RecordKind::kReputation)},
                        msg.round,
                        env->has_trace ? env->trace.span_id : 0);
          } catch (const std::exception& e) {
            util::log_warn() << "net: worker " << endpoint_->address()
                             << " audit query for round " << msg.round
                             << " failed: " << e.what();
          }
        }
        note_handled(tracer_, *env, last_traffic);
        break;
      }
      case MessageType::kAuditProof: {
        const auto msg = decode_payload<AuditProofMsg>(env->payload);
        if (audit_.enabled && msg.worker == endpoint_->address()) {
          if (!audit_registry_) {
            // Independent PKI replica: derived from the shared seed, never
            // received over the wire, so a lying server cannot also hand
            // the worker the keys that would make the lie check out.
            audit_registry_.emplace(chain::ReplicatedLedger::make_registry(
                audit_.key_seed, topology_.workers, topology_.servers));
          }
          const chain::AuditProofBundle bundle = msg.bundle();
          const bool verified =
              msg.found != 0 &&
              bundle.record.subject == endpoint_->address() &&
              bundle.record.round == msg.token &&
              bundle.record.kind == chain::RecordKind::kReputation &&
              chain::verify_audit_proof(bundle, *audit_registry_,
                                        topology_.workers,
                                        topology_.servers);
          audit_outcomes_.push_back({msg.token, verified});
          if (!verified) {
            util::log_warn() << "net: worker " << endpoint_->address()
                             << " audit proof for round " << msg.token
                             << " FAILED verification";
          }
        }
        note_handled(tracer_, *env, last_traffic);
        break;
      }
      case MessageType::kHeartbeat: {
        auto hb = decode_payload<HeartbeatMsg>(env->payload);
        if (hb.echo == 0) {
          endpoint_->send_msg(
              env->from, MessageType::kHeartbeat,
              HeartbeatMsg{endpoint_->address(), hb.token, 1});
        } else if (auto it = ping_sent_.find(hb.token);
                   it != ping_sent_.end()) {
          NetMetrics::global().rtt_ms->observe(elapsed_ms(it->second));
          ping_sent_.erase(it);
        }
        break;
      }
      case MessageType::kLeave:
        return;
      default:
        break;  // stray control traffic
    }
  }
}

void WorkerNode::handle_broadcast(const ModelBroadcastMsg& msg,
                                  std::uint64_t parent_span) {
  // Materialize θ_t: a dense broadcast replaces the local replica, a
  // delta patches it — but only against the exact baseline the lead
  // encoded it from. A mismatched baseline (the previous broadcast never
  // arrived, or a restart lost params_) is dropped without an ack, so the
  // lead keeps re-basing on the round we actually hold until a dense
  // fallback re-homes us.
  if (msg.codec == static_cast<std::uint8_t>(fl::Codec::kDelta)) {
    if (!has_params_ || params_round_ != msg.base_round ||
        params_.size() != msg.delta.dense_size) {
      util::log_warn() << "net: worker " << endpoint_->address()
                       << " cannot apply delta broadcast for round "
                       << msg.round << " (base " << msg.base_round
                       << ", have "
                       << (has_params_ ? std::to_string(params_round_)
                                       : std::string("none"))
                       << "), dropping";
      return;
    }
    msg.delta.apply_to(params_);
  } else {
    const nn::ParsedCheckpoint parsed = nn::parse_checkpoint(msg.checkpoint);
    params_ = parsed.parameters;
  }
  has_params_ = true;
  params_round_ = msg.round;

  fl::Upload upload = worker_->make_upload(params_);

  GradientUploadMsg out;
  out.round = msg.round;
  out.worker = endpoint_->address();
  out.samples = upload.samples;
  out.ground_truth_attack = upload.ground_truth_attack ? 1 : 0;
  out.codec = static_cast<std::uint8_t>(upload_codec_);
  if (upload_codec_ == fl::Codec::kTopK) {
    out.sparse = fl::topk_compress(upload.gradient.flat(), keep_fraction_);
  } else {
    out.gradient.assign(upload.gradient.flat().begin(),
                        upload.gradient.flat().end());
  }
  for (NodeKey server : topology_.server_keys()) {
    try {
      traced_send(*endpoint_, tracer_, server, MessageType::kGradientUpload,
                  out, msg.round, parent_span);
    } catch (const std::exception& e) {
      // One unreachable server must not kill the worker: the lead's
      // quorum path absorbs the missing upload.
      util::log_warn() << "net: worker " << endpoint_->address()
                       << " failed to upload to server " << server << ": "
                       << e.what();
    }
  }
  // Ping the lead once per round; the echo feeds net.rtt_ms.
  ping_sent_[msg.round] = std::chrono::steady_clock::now();
  try {
    endpoint_->send_msg(topology_.lead_key(), MessageType::kHeartbeat,
                        HeartbeatMsg{endpoint_->address(), msg.round, 0});
  } catch (const std::exception&) {
    ping_sent_.erase(msg.round);
  }
}

// ---------------------------------------------------------------------------
// ServerNode
// ---------------------------------------------------------------------------

ServerNode::ServerNode(ServerNodeConfig config,
                       std::unique_ptr<core::FiflEngine> engine,
                       std::unique_ptr<nn::Sequential> global_model,
                       std::unique_ptr<Endpoint> endpoint, Topology topology)
    : config_(config), engine_(std::move(engine)),
      global_model_(std::move(global_model)), endpoint_(std::move(endpoint)),
      topology_(topology) {
  if (!engine_ || !endpoint_) {
    throw std::invalid_argument("ServerNode: null engine or endpoint");
  }
  if (is_lead() != (global_model_ != nullptr)) {
    throw std::invalid_argument(
        "ServerNode: exactly the lead owns the global model");
  }
  if (config_.server_index >= topology_.servers) {
    throw std::invalid_argument("ServerNode: server index out of range");
  }
  if (config_.replicate_ledger) {
    replicated_ = std::make_unique<chain::ReplicatedLedger>(
        &engine_->ledger(), config_.ledger_key_seed, topology_.workers,
        topology_.servers, topology_.server_key(config_.server_index));
  }
  tracer_ = NodeTracer::for_node(endpoint_->address());
}

void ServerNode::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  endpoint_->close();
}

void ServerNode::run() {
  if (is_lead()) {
    run_lead();
  } else {
    run_follower();
  }
}

void ServerNode::note_worker_traffic(NodeKey from) {
  if (!is_lead() || from >= topology_.workers) return;
  last_seen_[from] = std::chrono::steady_clock::now();
}

void ServerNode::handle_control(const Envelope& envelope) {
  const auto handle_start = std::chrono::steady_clock::now();
  note_worker_traffic(envelope.from);
  switch (envelope.type) {
    case MessageType::kJoin: {
      const auto join = decode_payload<JoinMsg>(envelope.payload);
      if (is_lead()) {
        JoinAckMsg ack;
        ack.node = join.node;
        ack.workers = topology_.workers;
        ack.servers = topology_.servers;
        ack.param_count =
            global_model_ ? global_model_->parameter_count() : 0;
        ack.rounds = config_.rounds;
        if (join.role == NodeRole::kWorker) {
          ++joined_workers_;
          // Per-worker codec negotiation: the policy's preference wins iff
          // the worker advertised it; kDense otherwise. Mixed-codec
          // clusters fall out of this naturally.
          fl::Codec up = fl::Codec::kDense;
          if (config_.compression.upload == fl::Codec::kTopK &&
              fl::codec_in(join.codecs, fl::Codec::kTopK)) {
            up = fl::Codec::kTopK;
          }
          fl::Codec bc = fl::Codec::kDense;
          if (config_.compression.broadcast == fl::Codec::kDelta &&
              fl::codec_in(join.codecs, fl::Codec::kDelta)) {
            bc = fl::Codec::kDelta;
          }
          peer_broadcast_codec_[join.node] = bc;
          ack.upload_codec = static_cast<std::uint8_t>(up);
          ack.broadcast_codec = static_cast<std::uint8_t>(bc);
          ack.keep_fraction = up == fl::Codec::kTopK
                                  ? config_.compression.topk_keep_fraction
                                  : 1.0;
        } else {
          ++joined_servers_;
        }
        if (tracer_.tracing() && (join.features & kFeatureTrace) != 0) {
          // Both sides advertised tracing: answer with this (reference)
          // clock so the joiner can estimate its skew from the RTT.
          ack.features = kFeatureTrace;
          ack.clock_us = trace_now_us();
        }
        traced_send(*endpoint_, tracer_, envelope.from, MessageType::kJoinAck,
                    ack, 0, envelope.has_trace ? envelope.trace.span_id : 0);
      }
      break;
    }
    case MessageType::kHeartbeat: {
      auto hb = decode_payload<HeartbeatMsg>(envelope.payload);
      if (hb.echo == 0) {
        // A worker's per-round RTT ping doubles as a broadcast ack: tokens
        // below kLivenessTokenBase are the round number whose θ it holds.
        if (is_lead() && envelope.from < topology_.workers &&
            hb.token < kLivenessTokenBase) {
          note_broadcast_ack(envelope.from, hb.token);
        }
        try {
          endpoint_->send_msg(envelope.from, MessageType::kHeartbeat,
                              HeartbeatMsg{endpoint_->address(), hb.token, 1});
        } catch (const std::exception&) {
          // An unreachable pinger is the liveness machinery's problem.
        }
      }
      break;
    }
    case MessageType::kSliceAggregate: {
      auto slice = decode_payload<SliceAggregateMsg>(envelope.payload);
      const std::uint64_t round = slice.round;
      pending_slices_[round][slice.server_index] = std::move(slice);
      break;
    }
    case MessageType::kRoundSummary: {
      if (!is_lead()) {
        auto summary = decode_payload<RoundSummaryMsg>(envelope.payload);
        pending_summaries_[summary.round] = std::move(summary);
      }
      break;
    }
    case MessageType::kBlockProposal: {
      if (!is_lead() && replicated_) {
        auto proposal = decode_payload<BlockProposalMsg>(envelope.payload);
        // Buffer only: voting waits until this replica has sealed the
        // block itself (run_follower drains after each summary).
        pending_proposals_[proposal.block_index] = std::move(proposal);
      }
      break;
    }
    case MessageType::kBlockVote: {
      if (is_lead() && replicated_) {
        lead_handle_vote(decode_payload<BlockVoteMsg>(envelope.payload));
      }
      break;
    }
    case MessageType::kAuditQuery: {
      if (is_lead() && replicated_) {
        const auto query = decode_payload<AuditQueryMsg>(envelope.payload);
        const chain::AuditProofBundle bundle = replicated_->prove(
            static_cast<chain::RecordKind>(query.kind), query.round,
            query.worker);
        try {
          traced_send(*endpoint_, tracer_, envelope.from,
                      MessageType::kAuditProof,
                      AuditProofMsg::from_bundle(query.round, query.worker,
                                                 query.token, bundle),
                      query.round,
                      envelope.has_trace ? envelope.trace.span_id : 0);
        } catch (const std::exception& e) {
          util::log_warn() << "net: audit proof to node " << envelope.from
                           << " failed: " << e.what();
        }
      }
      break;
    }
    case MessageType::kLeave:
      leave_received_ = true;
      break;
    default:
      break;
  }
  note_handled(tracer_, envelope, handle_start);
}

void ServerNode::lead_handle_upload(
    GradientUploadMsg msg, std::uint64_t round,
    std::map<std::uint32_t, GradientUploadMsg>* slots) {
  auto& metrics = NetMetrics::global();
  note_worker_traffic(msg.worker);
  if (dead_workers_.count(msg.worker) != 0) {
    // A declared-dead worker is speaking again: its uploads stay rejected
    // for the round in flight (the roster already shrank around it), but
    // it re-homes at the next ModelBroadcast and catches up from there.
    metrics.dead_uploads->inc();
    if (revive_pending_.insert(msg.worker).second) {
      metrics.worker_rejoins->inc();
      util::log_info() << "net: dead worker " << msg.worker
                       << " is back, re-homing at next broadcast";
    }
    return;
  }
  // An upload for round r proves the worker trained on θ_r, so it doubles
  // as a broadcast ack for delta re-basing.
  note_broadcast_ack(msg.worker, msg.round);
  if (slots != nullptr && msg.round == round) {
    (*slots)[msg.worker] = std::move(msg);
  } else if (msg.round > round) {
    pending_uploads_[msg.round][msg.worker] = std::move(msg);
  } else {
    // Upload for a round whose collect window already closed.
    metrics.late_uploads->inc();
    util::log_debug() << "net: late upload from worker " << msg.worker
                      << " for round " << msg.round << " (current " << round
                      << ")";
  }
}

void ServerNode::collect_uploads(
    std::uint64_t round, std::map<std::uint32_t, GradientUploadMsg>& slots,
    std::chrono::steady_clock::time_point deadline) {
  auto& metrics = NetMetrics::global();
  if (auto it = pending_uploads_.find(round); it != pending_uploads_.end()) {
    // Route buffered-ahead uploads through the same intake as live ones,
    // so a dead worker's early upload still counts as "spoke again".
    auto buffered = std::move(it->second);
    pending_uploads_.erase(it);
    for (auto& [worker, msg] : buffered) {
      lead_handle_upload(std::move(msg), round, &slots);
    }
  }
  while (!leave_received_ && !stop_.load(std::memory_order_relaxed)) {
    // Prune the roster: silence longer than the liveness window means the
    // worker process is gone, not slow. Its slot is given up immediately
    // so a crashed worker costs one liveness window, not a full phase
    // timeout every round.
    const auto now = std::chrono::steady_clock::now();
    for (std::uint32_t i = 0; i < topology_.workers; ++i) {
      if (dead_workers_.count(i) != 0) continue;
      const auto seen = last_seen_.find(i);
      if (seen != last_seen_.end() &&
          now - seen->second > config_.timeouts.liveness) {
        dead_workers_.insert(i);
        // Forget its broadcast ack: a rejoin re-bases on a dense
        // checkpoint instead of a delta against θ it may have lost.
        acked_round_.erase(i);
        metrics.dropped_workers->inc();
        tracer_.note(obs::FlightEventKind::kDeadWorker, i, 0, round);
        util::log_warn() << "net: lead declared worker " << i
                         << " dead (silent beyond the liveness window)";
      }
    }
    bool all_live_slotted = true;
    for (std::uint32_t i = 0; i < topology_.workers; ++i) {
      if (dead_workers_.count(i) == 0 && slots.count(i) == 0) {
        all_live_slotted = false;
        break;
      }
    }
    if (all_live_slotted) break;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    if (left.count() <= 0) break;  // missing workers become uncertain events
    auto env = endpoint_->recv(std::min(left, config_.timeouts.heartbeat));
    if (!env) continue;  // wake up for the liveness scan regardless
    if (env->type == MessageType::kGradientUpload) {
      const auto handle_start = std::chrono::steady_clock::now();
      lead_handle_upload(decode_payload<GradientUploadMsg>(env->payload),
                         round, &slots);
      note_handled(tracer_, *env, handle_start);
    } else {
      handle_control(*env);
    }
  }
}

void ServerNode::run_follower() {
  const NodeKey lead = topology_.lead_key();
  JoinMsg join{endpoint_->address(), NodeRole::kServer};
  std::uint64_t join_sent_us = 0;
  if (tracer_.tracing()) {
    join.features = kFeatureTrace;
    join_sent_us = trace_now_us();
    join.clock_us = join_sent_us;
  }
  traced_send(*endpoint_, tracer_, lead, MessageType::kJoin, join, 0);
  const auto join_deadline = std::chrono::steady_clock::now() + config_.timeouts.join;
  std::uint64_t rounds = 0;
  bool acked = false;
  while (!acked && !stop_.load(std::memory_order_relaxed)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        join_deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      throw std::runtime_error("ServerNode " +
                               std::to_string(endpoint_->address()) +
                               ": join timed out");
    }
    auto env = endpoint_->recv(left);
    if (!env) continue;
    if (env->type == MessageType::kJoinAck) {
      const auto handle_start = std::chrono::steady_clock::now();
      const auto ack = decode_payload<JoinAckMsg>(env->payload);
      rounds = ack.rounds;
      if (tracer_.tracing() && (ack.features & kFeatureTrace) != 0) {
        const std::uint64_t t1 = trace_now_us();
        const std::int64_t rtt = static_cast<std::int64_t>(t1 - join_sent_us);
        const std::int64_t skew = static_cast<std::int64_t>(ack.clock_us) +
                                  rtt / 2 - static_cast<std::int64_t>(t1);
        tracer_.clock(skew, rtt);
      }
      note_handled(tracer_, *env, handle_start);
      acked = true;
    } else {
      handle_control(*env);
    }
  }

  // Event-driven replica: buffer uploads by round, run the engine only
  // when the lead's RoundSummary names the counted set for the next round
  // in sequence. `rounds` (from the JoinAck) bounds nothing here — the
  // loop ends on Leave or on a full phase of silence, whichever the
  // failure mode produces.
  (void)rounds;
  std::uint64_t next_round = 0;
  // A degraded round legitimately silences this link for a full phase
  // (the lead waiting out its collect deadline) and, when our slice was
  // lost, a second one (the lead's slice wait) — so only three phases of
  // unbroken silence mean the lead is actually gone.
  auto last_traffic = std::chrono::steady_clock::now();
  while (!leave_received_ && !stop_.load(std::memory_order_relaxed)) {
    auto env = endpoint_->recv(config_.timeouts.phase);
    if (!env) {
      if (std::chrono::steady_clock::now() - last_traffic <
          3 * config_.timeouts.phase) {
        continue;
      }
      util::log_warn() << "net: server " << endpoint_->address()
                       << " timed out waiting for traffic, exiting";
      break;
    }
    last_traffic = std::chrono::steady_clock::now();
    if (env->type == MessageType::kGradientUpload) {
      auto msg = decode_payload<GradientUploadMsg>(env->payload);
      if (msg.round >= next_round) {
        pending_uploads_[msg.round][msg.worker] = std::move(msg);
      } else {
        NetMetrics::global().late_uploads->inc();
      }
      note_handled(tracer_, *env, last_traffic);
    } else {
      handle_control(*env);
    }
    // Run every round whose summary has arrived, strictly in order.
    while (!pending_summaries_.empty() && !leave_received_ &&
           !stop_.load(std::memory_order_relaxed)) {
      auto it = pending_summaries_.begin();
      if (it->first < next_round) {  // stale duplicate
        pending_summaries_.erase(it);
        continue;
      }
      if (it->first > next_round) {
        // A summary went missing: this replica skipped a round of engine
        // state and can never rejoin the lead's deterministic sequence.
        if (!diverged_) {
          diverged_ = true;
          util::log_warn() << "net: server " << endpoint_->address()
                           << " missed summary for round " << next_round
                           << ", replica diverged";
        }
        next_round = it->first;
      }
      const RoundSummaryMsg summary = std::move(it->second);
      pending_summaries_.erase(it);
      process_summary(summary);
      pending_uploads_.erase(pending_uploads_.begin(),
                             pending_uploads_.upper_bound(summary.round));
      next_round = summary.round + 1;
    }
    // Every block this replica has now sealed can be checked against the
    // lead's proposal and endorsed (or exposed as a fork).
    if (replicated_) follower_vote_on_proposals();
  }
}

void ServerNode::follower_vote_on_proposals() {
  const NodeKey lead = topology_.lead_key();
  while (!pending_proposals_.empty()) {
    const auto it = pending_proposals_.begin();
    if (diverged_) {
      // A diverged replica skipped engine rounds; it can no longer attest
      // blocks it never sealed. Dropping the proposal (instead of voting
      // no) keeps the fault crash-shaped: the lead counts a missing vote,
      // not a contradiction.
      pending_proposals_.erase(it);
      continue;
    }
    if (it->first >= engine_->ledger().block_count()) break;  // not sealed yet
    const BlockProposalMsg proposal = std::move(it->second);
    pending_proposals_.erase(it);
    const std::optional<chain::Signature> vote = replicated_->verify_and_vote(
        proposal.header(), proposal.executor_sig, proposal.records);
    if (!vote) {
      // The lead proposed a block this replica's deterministic ledger did
      // not produce: a fork, by construction the strongest Byzantine
      // signal the protocol can emit. Capture everyone's recent events
      // before unwinding.
      tracer_.note(obs::FlightEventKind::kLedgerFork, lead,
                   static_cast<std::uint8_t>(MessageType::kBlockProposal),
                   proposal.round);
      obs::FlightRegistry::global().dump("ledger_fork");
      throw std::runtime_error(
          "server " + std::to_string(endpoint_->address()) +
          ": proposed block " + std::to_string(proposal.block_index) +
          " contradicts the local replica ledger (fork)");
    }
    BlockVoteMsg out;
    out.round = proposal.round;
    out.block_index = proposal.block_index;
    out.block_hash = proposal.block_hash;
    out.vote = *vote;
    try {
      traced_send(*endpoint_, tracer_, lead, MessageType::kBlockVote, out,
                  proposal.round);
    } catch (const std::exception& e) {
      util::log_warn() << "net: server " << endpoint_->address()
                       << " failed to send block vote for round "
                       << proposal.round << ": " << e.what();
    }
  }
}

void ServerNode::lead_handle_vote(const BlockVoteMsg& msg) {
  try {
    replicated_->record_vote(msg.block_index, msg.block_hash, msg.vote);
  } catch (const std::exception& e) {
    // A validly signed vote for a *different* block hash at this index:
    // some replica sealed a contradicting history.
    tracer_.note(obs::FlightEventKind::kLedgerFork, msg.vote.signer,
                 static_cast<std::uint8_t>(MessageType::kBlockVote),
                 msg.round);
    obs::FlightRegistry::global().dump("ledger_fork");
    throw std::runtime_error("lead: block vote for round " +
                             std::to_string(msg.round) +
                             " exposes a ledger fork: " + e.what());
  }
}

void ServerNode::await_ledger_commit(std::uint64_t r) {
  const auto deadline =
      std::chrono::steady_clock::now() + config_.timeouts.phase;
  while (!replicated_->committed(r) &&
         !stop_.load(std::memory_order_relaxed)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      const chain::SealedBlockHeader* sealed = replicated_->sealed(r);
      const std::uint64_t votes =
          sealed ? 1 + sealed->votes.size() : 0;  // executor counts itself
      tracer_.note(obs::FlightEventKind::kQuorumAbort, obs::kNoFlightPeer,
                   static_cast<std::uint8_t>(MessageType::kBlockVote), r,
                   votes);
      obs::FlightRegistry::global().dump("quorum_abort");
      throw std::runtime_error(
          "lead: round " + std::to_string(r) + " ledger commit below quorum (" +
          std::to_string(votes) + " of " +
          std::to_string(replicated_->quorum()) + " endorsements)");
    }
    auto env = endpoint_->recv(left);
    if (!env) continue;
    if (env->type == MessageType::kGradientUpload) {
      const auto handle_start = std::chrono::steady_clock::now();
      lead_handle_upload(decode_payload<GradientUploadMsg>(env->payload), r,
                         nullptr);
      note_handled(tracer_, *env, handle_start);
    } else {
      handle_control(*env);
    }
  }
}

void ServerNode::process_summary(const RoundSummaryMsg& summary) {
  const NodeKey lead = topology_.lead_key();
  const std::uint64_t r = summary.round;
  const std::uint32_t j = config_.server_index;

  bool complete = !diverged_;
  if (complete) {
    // Grace-wait for counted uploads that are still in flight behind the
    // summary (the lead saw them; this replica's copies may be delayed).
    const auto deadline =
        std::chrono::steady_clock::now() + config_.timeouts.phase;
    while (!leave_received_ && !stop_.load(std::memory_order_relaxed)) {
      const auto& slots = pending_uploads_[r];
      const bool missing =
          std::any_of(summary.counted.begin(), summary.counted.end(),
                      [&](std::uint32_t w) { return slots.count(w) == 0; });
      if (!missing) break;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        complete = false;
        break;
      }
      auto env = endpoint_->recv(left);
      if (!env) continue;
      if (env->type == MessageType::kGradientUpload) {
        auto msg = decode_payload<GradientUploadMsg>(env->payload);
        if (msg.round >= r) {
          pending_uploads_[msg.round][msg.worker] = std::move(msg);
        }
      } else {
        handle_control(*env);  // later summaries buffer for the run loop
      }
    }
    if (leave_received_ || stop_.load(std::memory_order_relaxed)) return;
  }

  SliceAggregateMsg out;
  out.round = r;
  out.server_index = j;
  out.offset = engine_->plan().offset(j);
  if (complete) {
    // Feed the engine exactly the lead's counted set; uploads this
    // replica received beyond it are discarded, workers not listed become
    // absent (uncertain) — byte-identical inputs to the lead's.
    auto& slots = pending_uploads_[r];
    std::vector<GradientUploadMsg> msgs;
    msgs.reserve(summary.counted.size());
    for (std::uint32_t w : summary.counted) msgs.push_back(std::move(slots[w]));
    const std::vector<fl::Upload> uploads =
        canonicalize_uploads(msgs, topology_.workers);
    const core::RoundReport report = engine_->process_round(uploads);

    // This replica's slice of the aggregated gradient — the paper's
    // polycentric server->lead traffic (Sec. 3.2).
    const std::span<const float> slice =
        engine_->plan().slice(report.global_gradient, j);
    out.complete = 1;
    out.values.assign(slice.begin(), slice.end());
  } else {
    // A counted upload never reached this replica, so it cannot reproduce
    // the lead's engine inputs. Its state is now permanently behind; it
    // answers every future round instantly with an empty incomplete slice
    // and lets the lead count the gap.
    if (!diverged_) {
      diverged_ = true;
      util::log_warn() << "net: server " << endpoint_->address()
                       << " lacks counted uploads for round " << r
                       << ", replica diverged";
    }
    out.complete = 0;
  }
  try {
    traced_send(*endpoint_, tracer_, lead, MessageType::kSliceAggregate, out,
                r);
  } catch (const std::exception& e) {
    util::log_warn() << "net: server " << endpoint_->address()
                     << " failed to send slice for round " << r << ": "
                     << e.what();
  }
}

void ServerNode::note_broadcast_ack(NodeKey worker, std::uint64_t round) {
  const auto [it, inserted] = acked_round_.try_emplace(worker, round);
  if (!inserted && it->second < round) it->second = round;
}

const ModelBroadcastMsg& ServerNode::broadcast_for(
    std::uint32_t worker, const ModelBroadcastMsg& dense,
    std::span<const float> theta,
    std::map<std::uint64_t, std::optional<ModelBroadcastMsg>>& delta_cache) {
  const auto codec_it = peer_broadcast_codec_.find(worker);
  if (codec_it == peer_broadcast_codec_.end() ||
      codec_it->second != fl::Codec::kDelta) {
    return dense;
  }
  const auto ack_it = acked_round_.find(worker);
  if (ack_it == acked_round_.end()) return dense;  // never acked: re-base
  const std::uint64_t base = ack_it->second;
  auto cache_it = delta_cache.find(base);
  if (cache_it == delta_cache.end()) {
    // First worker basing on `base` this round: build (or decline) the
    // delta once and cache the decision for the rest of the roster.
    std::optional<ModelBroadcastMsg> built;
    const auto hist_it = broadcast_history_.find(base);
    if (hist_it != broadcast_history_.end() &&
        hist_it->second.size() == theta.size()) {
      fl::SparseVector delta = fl::delta_compress(hist_it->second, theta);
      // Break-even on parameter payload: 5-9 bytes per sparse entry
      // (varint index + f32) against 4 per dense param.
      if (!config_.compression.delta_dense_fallback ||
          delta.wire_bytes() < theta.size() * sizeof(float)) {
        ModelBroadcastMsg msg;
        msg.round = dense.round;
        msg.codec = static_cast<std::uint8_t>(fl::Codec::kDelta);
        msg.base_round = base;
        msg.delta = std::move(delta);
        built = std::move(msg);
      }
    }
    cache_it = delta_cache.emplace(base, std::move(built)).first;
  }
  return cache_it->second ? *cache_it->second : dense;
}

void ServerNode::run_lead() {
  // Phase 0: wait for the full federation to join.
  const auto join_deadline = std::chrono::steady_clock::now() + config_.timeouts.join;
  while ((joined_workers_ < topology_.workers ||
          joined_servers_ + 1 < topology_.servers) &&
         !stop_.load(std::memory_order_relaxed)) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        join_deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      throw std::runtime_error(
          "lead: join phase timed out (" + std::to_string(joined_workers_) +
          "/" + std::to_string(topology_.workers) + " workers, " +
          std::to_string(joined_servers_ + 1) + "/" +
          std::to_string(topology_.servers) + " servers)");
    }
    auto env = endpoint_->recv(left);
    if (env) handle_control(*env);
  }

  obs::RoundTraceRecorder* recorder =
      trace_recorder_ ? trace_recorder_ : &obs::RoundTraceRecorder::global();

  // The lead's clock is the merged timeline's reference: skew 0.
  if (tracer_.tracing()) tracer_.clock(0, 0);

  auto& metrics = NetMetrics::global();
  const std::size_t quorum_min = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(config_.quorum.min_fraction *
                                            topology_.workers)));

  for (std::uint64_t r = 0; r < config_.rounds; ++r) {
    if (stop_.load(std::memory_order_relaxed)) return;
    const CounterSnapshot net_before = CounterSnapshot::take();
    const auto train_start = std::chrono::steady_clock::now();

    // Re-home workers that spoke again after being declared dead: they
    // rejoin the roster exactly at a broadcast, so they catch up from the
    // current θ and never land mid-round without a model.
    for (NodeKey worker : revive_pending_) {
      if (dead_workers_.erase(worker) != 0) {
        util::log_info() << "net: worker " << worker << " rejoined for round "
                         << r;
      }
    }
    revive_pending_.clear();

    // Broadcast θ_t to the live roster; every live worker's liveness
    // window restarts here so a long collect cannot starve it. Workers
    // that negotiated kDelta get a sparse update against the last θ they
    // acknowledged when that beats the dense checkpoint.
    ModelBroadcastMsg broadcast;
    broadcast.round = r;
    broadcast.checkpoint =
        nn::checkpoint_bytes(*global_model_, "round-" + std::to_string(r));
    const std::vector<float> theta = global_model_->flatten_parameters();
    std::map<std::uint64_t, std::optional<ModelBroadcastMsg>> delta_cache;
    for (std::uint32_t i = 0; i < topology_.workers; ++i) {
      if (dead_workers_.count(i) != 0) continue;
      last_seen_[i] = train_start;
      try {
        traced_send(*endpoint_, tracer_, topology_.worker_key(i),
                    MessageType::kModelBroadcast,
                    broadcast_for(i, broadcast, theta, delta_cache), r);
      } catch (const std::exception& e) {
        util::log_warn() << "net: broadcast to worker " << i
                         << " failed: " << e.what();
      }
    }
    note_phase(tracer_, metrics.phase_broadcast_ms, "broadcast", r,
               train_start);
    const bool any_delta_peer = std::any_of(
        peer_broadcast_codec_.begin(), peer_broadcast_codec_.end(),
        [](const auto& kv) { return kv.second == fl::Codec::kDelta; });
    if (any_delta_peer) {
      broadcast_history_[r] = theta;
      constexpr std::size_t kHistoryDepth = 8;
      while (broadcast_history_.size() > kHistoryDepth) {
        broadcast_history_.erase(broadcast_history_.begin());
      }
    }

    // Collect uploads (the networked analogue of local_train + channel).
    const auto collect_start = std::chrono::steady_clock::now();
    std::map<std::uint32_t, GradientUploadMsg> slots;
    collect_uploads(r, slots, collect_start + config_.timeouts.phase);
    if (stop_.load(std::memory_order_relaxed)) return;
    const double collect_ms = elapsed_ms(train_start);
    note_phase(tracer_, metrics.phase_collect_ms, "collect", r, collect_start);

    // Quorum gate: proceed on a partial roster, abort below the floor.
    const std::size_t counted = slots.size();
    const std::size_t live =
        topology_.workers - std::min<std::size_t>(dead_workers_.size(),
                                                  topology_.workers);
    if (counted < quorum_min) {
      // Abort path: capture the last K events of every node before the
      // exception unwinds the cluster.
      tracer_.note(obs::FlightEventKind::kQuorumAbort, obs::kNoFlightPeer, 0,
                   r, counted);
      obs::FlightRegistry::global().dump("quorum_abort");
      throw std::runtime_error(
          "lead: round " + std::to_string(r) + " below quorum (" +
          std::to_string(counted) + " of " + std::to_string(topology_.workers) +
          " uploads, quorum " + std::to_string(quorum_min) + ")");
    }
    if (counted < topology_.workers) {
      metrics.rounds_degraded->inc();
      tracer_.note(obs::FlightEventKind::kDegradedRound, obs::kNoFlightPeer, 0,
                   r, counted);
      util::log_warn() << "net: round " << r << " degraded: " << counted
                       << " of " << topology_.workers << " uploads counted";
    }

    // Publish the counted set so every follower replica feeds its engine
    // the same inputs this one is about to see.
    RoundSummaryMsg summary;
    summary.round = r;
    summary.degraded = counted < topology_.workers ? 1 : 0;
    summary.counted.reserve(counted);
    for (const auto& [worker, msg] : slots) summary.counted.push_back(worker);
    const auto assess_start = std::chrono::steady_clock::now();
    for (std::uint32_t j = 1; j < topology_.servers; ++j) {
      try {
        traced_send(*endpoint_, tracer_, topology_.server_key(j),
                    MessageType::kRoundSummary, summary, r);
      } catch (const std::exception& e) {
        util::log_warn() << "net: summary to server " << j
                         << " failed: " << e.what();
      }
    }

    std::vector<GradientUploadMsg> msgs;
    msgs.reserve(slots.size());
    for (auto& [worker, msg] : slots) msgs.push_back(std::move(msg));
    const std::vector<fl::Upload> uploads =
        canonicalize_uploads(msgs, topology_.workers);

    // Full pipeline on the lead's replica.
    const core::RoundReport report = engine_->process_round(uploads);

    if (replicated_) {
      // The engine just sealed block r; propose it. Followers re-derive
      // the same block from their own replica state and answer with
      // signed endorsements — the lead never ships a bare "trust me".
      const chain::SealedBlockHeader& sealed = replicated_->propose(r);
      BlockProposalMsg proposal;
      proposal.round = r;
      proposal.block_index = sealed.header.index;
      proposal.previous_hash = sealed.header.previous_hash;
      proposal.merkle_root = sealed.header.merkle_root;
      proposal.block_hash = sealed.header.block_hash;
      proposal.executor_sig = sealed.executor_sig;
      proposal.records = engine_->ledger().block(r).records;
      for (std::uint32_t j = 1; j < topology_.servers; ++j) {
        try {
          traced_send(*endpoint_, tracer_, topology_.server_key(j),
                      MessageType::kBlockProposal, proposal, r);
        } catch (const std::exception& e) {
          util::log_warn() << "net: block proposal to server " << j
                           << " failed: " << e.what();
        }
      }
    }

    // Gather the follower slices and check every complete one bitwise
    // against this replica's result: divergence on a complete slice means
    // the deterministic-replica invariant broke, which would silently
    // fork the federation. A missing or incomplete slice is a tolerated
    // crash-fault gap (net.slice_gaps), not divergence.
    const auto slice_deadline =
        std::chrono::steady_clock::now() + config_.timeouts.phase;
    while (pending_slices_[r].size() + 1 < topology_.servers &&
           !stop_.load(std::memory_order_relaxed)) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          slice_deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) break;
      auto env = endpoint_->recv(left);
      if (!env) continue;
      if (env->type == MessageType::kGradientUpload) {
        const auto handle_start = std::chrono::steady_clock::now();
        lead_handle_upload(decode_payload<GradientUploadMsg>(env->payload), r,
                           nullptr);
        note_handled(tracer_, *env, handle_start);
      } else {
        handle_control(*env);
      }
    }
    for (std::uint32_t j = 1; j < topology_.servers; ++j) {
      const auto slice_it = pending_slices_[r].find(j);
      if (slice_it == pending_slices_[r].end()) {
        metrics.slice_gaps->inc();
        util::log_warn() << "net: no slice from server " << j << " for round "
                         << r;
        continue;
      }
      const SliceAggregateMsg& slice = slice_it->second;
      if (slice.complete == 0) {
        metrics.slice_gaps->inc();
        util::log_warn() << "net: server " << j
                         << " could not reproduce round " << r
                         << " (incomplete slice)";
        continue;
      }
      const std::span<const float> own =
          engine_->plan().slice(report.global_gradient, j);
      if (slice.offset != engine_->plan().offset(j) ||
          slice.values.size() != own.size() ||
          !std::equal(own.begin(), own.end(), slice.values.begin())) {
        // Byzantine (or broken-replica) divergence: dump every node's
        // recent events before aborting, so the postmortem shows what
        // each replica saw leading up to the mismatched slice.
        tracer_.note(obs::FlightEventKind::kDivergence,
                     topology_.server_key(j),
                     static_cast<std::uint8_t>(MessageType::kSliceAggregate),
                     r);
        obs::FlightRegistry::global().dump("byzantine_divergence");
        throw std::runtime_error("lead: server " + std::to_string(j) +
                                 " diverged from the replicated engine on round " +
                                 std::to_string(r));
      }
    }
    pending_slices_.erase(r);

    if (replicated_ && !replicated_->committed(r)) {
      // Block r must reach endorsement quorum before the round's effects
      // (θ update, assessment) are published — a below-quorum ledger means
      // the audit trail is no longer replicated enough to be trusted.
      const auto commit_start = std::chrono::steady_clock::now();
      await_ledger_commit(r);
      if (stop_.load(std::memory_order_relaxed)) return;
      note_phase(tracer_, metrics.phase_ledger_commit_ms, "ledger_commit", r,
                 commit_start);
    }

    // θ ← θ − η·G̃ — identical float ops to Simulator::apply_round because
    // the engine's aggregation loop is the simulator's (and the follower
    // slices were just proven bitwise equal).
    fl::apply_gradient_step(*global_model_, report.global_gradient,
                            config_.global_learning_rate);

    // Publish the assessment + this round's sealed audit records.
    AssessmentResultMsg assessment;
    assessment.round = r;
    assessment.degraded = report.degraded ? 1 : 0;
    assessment.fairness = report.fairness;
    assessment.workers.reserve(topology_.workers);
    for (std::uint32_t i = 0; i < topology_.workers; ++i) {
      WorkerAssessment wa;
      wa.worker = i;
      wa.arrived = uploads[i].arrived ? 1 : 0;
      wa.accepted = report.detection.accepted[i] ? 1 : 0;
      wa.uncertain = report.detection.uncertain[i] ? 1 : 0;
      wa.score = report.detection.scores[i];
      wa.reputation = report.reputations[i];
      wa.contribution = report.contribution.contributions[i];
      wa.reward = report.rewards[i];
      assessment.workers.push_back(wa);
    }
    assessment.records = engine_->ledger().query(std::nullopt, r, std::nullopt);
    for (std::uint32_t i = 0; i < topology_.workers; ++i) {
      if (dead_workers_.count(i) != 0) continue;
      try {
        traced_send(*endpoint_, tracer_, topology_.worker_key(i),
                    MessageType::kAssessmentResult, assessment, r);
      } catch (const std::exception& e) {
        util::log_warn() << "net: assessment to worker " << i
                         << " failed: " << e.what();
      }
    }
    note_phase(tracer_, metrics.phase_assess_ms, "assess", r, assess_start);

    // Round bookkeeping: result row, trace, callback.
    NetRoundResult result;
    result.round = r;
    result.model_hash = parameter_hash(global_model_->flatten_parameters());
    result.degraded = report.degraded;
    result.fairness = report.fairness;
    result.reputations = report.reputations;
    result.rewards = report.rewards;
    result.counted = counted;
    result.live_workers = live;
    result.arrived.reserve(uploads.size());
    for (const fl::Upload& u : uploads) {
      result.arrived.push_back(u.arrived ? 1 : 0);
    }
    core::RoundRecord record;
    core::summarize_report(report, uploads, record);
    result.accepted = record.accepted;
    result.rejected = record.rejected;
    result.uncertain = record.uncertain;

    if (recorder->enabled()) {
      obs::RoundTrace trace = core::make_round_trace(r, report, uploads);
      // The broadcast->collect window plays the role of local_train +
      // channel; the wire has no separate channel phase.
      trace.phases.local_train_ms = collect_ms;
      trace.phases.channel_ms = 0.0;
      trace.phases.detect_ms = report.detect_ms;
      trace.phases.aggregate_ms = report.aggregate_ms;
      trace.phases.ledger_ms = report.ledger_ms;
      trace.net = net_before.delta_since();
      trace.has_net = true;
      recorder->record(trace);
    }
    if (round_callback_) {
      round_callback_(result, global_model_->flatten_parameters());
    }
    results_.push_back(std::move(result));
  }

  // Dissolve the federation (dead workers already exited on their own).
  for (std::uint32_t i = 0; i < topology_.workers; ++i) {
    if (dead_workers_.count(i) != 0) continue;
    try {
      endpoint_->send_msg(topology_.worker_key(i), MessageType::kLeave,
                          LeaveMsg{endpoint_->address(), "training complete"});
    } catch (const std::exception&) {
      // A worker that already dropped its connection is fine to skip.
    }
  }
  for (std::uint32_t j = 1; j < topology_.servers; ++j) {
    try {
      endpoint_->send_msg(topology_.server_key(j), MessageType::kLeave,
                          LeaveMsg{endpoint_->address(), "training complete"});
    } catch (const std::exception&) {
    }
  }
}

}  // namespace fifl::net
