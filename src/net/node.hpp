// The federation's roles as communicating nodes (Sec. 3.1/3.2 as a
// runtime instead of a loop over std::vector<Worker>).
//
// Topology: N WorkerNodes (keys 0..N-1) and M ServerNodes (keys
// N..N+M-1). Server 0 — the "lead" — drives the round state machine:
//
//   lead:    ModelBroadcast θ_t ──► workers
//   worker:  local SGD + behaviour ──► GradientUpload to EVERY server
//   server:  deterministic FiflEngine replica over the canonical upload
//            vector ──► SliceAggregate (its slice of G̃) to the lead
//   lead:    recombine M slices ──► θ_{t+1}; AssessmentResult (per-worker
//            accept/reputation/reward + signed ledger records) ──► workers
//
// Every server runs the full assessment pipeline on the full upload set
// (deterministic state-machine replication — the replicas stay
// bit-identical, which the lead checks against the slices it receives);
// only the aggregated slices travel on the server→lead path, keeping the
// paper's polycentric bandwidth shape on the wire. Uploads are buffered
// into per-worker slots and processed in worker-id order, so results are
// independent of message arrival order by construction. Each phase waits
// under a timeout; workers that miss it become "uncertain events",
// exactly like channel losses in the simulator.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/fifl.hpp"
#include "fl/simulator.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"

namespace fifl::net {

/// Node-key layout helper for one cluster.
struct Topology {
  std::uint32_t workers = 0;
  std::uint32_t servers = 0;

  NodeKey worker_key(std::uint32_t i) const noexcept { return i; }
  NodeKey server_key(std::uint32_t j) const noexcept { return workers + j; }
  NodeKey lead_key() const noexcept { return workers; }
  std::vector<NodeKey> server_keys() const;
};

/// Builds the canonical worker-id-ordered upload vector from upload
/// messages in arbitrary arrival order. Slot i holds worker i's message
/// (duplicates: last wins); workers with no message become absent uploads
/// (arrived = false), i.e. uncertain events. This is the single point
/// that makes server assessment independent of wire ordering.
std::vector<fl::Upload> canonicalize_uploads(
    std::span<const GradientUploadMsg> msgs, std::size_t workers);

struct NodeTimeouts {
  std::chrono::milliseconds join{10000};
  std::chrono::milliseconds phase{10000};
};

/// Per-round outcome collected by the lead server.
struct NetRoundResult {
  std::uint64_t round = 0;
  std::string model_hash;  // sha256 hex of θ_{t+1}
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t uncertain = 0;
  bool degraded = false;
  double fairness = 0.0;
  std::vector<double> reputations;
  std::vector<double> rewards;
};

/// sha256 hex digest of a flat parameter vector (the equivalence
/// fingerprint both runtimes are compared on).
std::string parameter_hash(std::span<const float> params);

class WorkerNode {
 public:
  WorkerNode(std::unique_ptr<fl::Worker> worker,
             std::unique_ptr<Endpoint> endpoint, Topology topology,
             NodeTimeouts timeouts);

  /// Event loop: join, then train on every ModelBroadcast until Leave.
  /// Runs on the caller's thread (the cluster gives each node one).
  void run();

  void request_stop();

  /// Rewards this worker saw in its AssessmentResults (bookkeeping the
  /// incentive actually delivered to the node).
  const std::vector<double>& observed_rewards() const noexcept {
    return observed_rewards_;
  }

 private:
  void handle_broadcast(const ModelBroadcastMsg& msg);

  std::unique_ptr<fl::Worker> worker_;
  std::unique_ptr<Endpoint> endpoint_;
  Topology topology_;
  NodeTimeouts timeouts_;
  std::atomic<bool> stop_{false};
  std::vector<double> observed_rewards_;
  std::map<std::uint64_t, std::chrono::steady_clock::time_point> ping_sent_;
};

struct ServerNodeConfig {
  std::uint32_t server_index = 0;  // 0 = lead
  std::size_t rounds = 0;          // lead only: rounds to drive
  double global_learning_rate = 0.05;
  NodeTimeouts timeouts;
};

class ServerNode {
 public:
  /// Non-lead constructor: an engine replica and an endpoint.
  /// `global_model` must be non-null iff server_index == 0; the lead owns
  /// θ and drives the round loop.
  ServerNode(ServerNodeConfig config, std::unique_ptr<core::FiflEngine> engine,
             std::unique_ptr<nn::Sequential> global_model,
             std::unique_ptr<Endpoint> endpoint, Topology topology);

  using RoundCallback =
      std::function<void(const NetRoundResult&, std::span<const float>)>;
  void set_round_callback(RoundCallback callback) {
    round_callback_ = std::move(callback);
  }
  /// Where the lead's per-round traces go (nullptr = process-global).
  void set_trace_recorder(obs::RoundTraceRecorder* recorder) {
    trace_recorder_ = recorder;
  }

  void run();
  void request_stop();

  bool is_lead() const noexcept { return config_.server_index == 0; }
  const std::vector<NetRoundResult>& results() const noexcept {
    return results_;
  }
  const core::FiflEngine& engine() const noexcept { return *engine_; }
  nn::Sequential* global_model() noexcept { return global_model_.get(); }

 private:
  void run_lead();
  void run_follower();
  /// Waits until `slots` has an entry for every worker or the deadline
  /// passes, echoing heartbeats and buffering slice messages meanwhile.
  void collect_uploads(std::uint64_t round,
                       std::map<std::uint32_t, GradientUploadMsg>& slots,
                       std::chrono::steady_clock::time_point deadline);
  void handle_control(const Envelope& envelope);

  ServerNodeConfig config_;
  std::unique_ptr<core::FiflEngine> engine_;
  std::unique_ptr<nn::Sequential> global_model_;
  std::unique_ptr<Endpoint> endpoint_;
  Topology topology_;
  std::atomic<bool> stop_{false};
  bool leave_received_ = false;
  RoundCallback round_callback_;
  obs::RoundTraceRecorder* trace_recorder_ = nullptr;
  std::vector<NetRoundResult> results_;
  /// Uploads buffered ahead of their round (a worker can race ahead of a
  /// lagging follower), keyed by round then worker.
  std::map<std::uint64_t, std::map<std::uint32_t, GradientUploadMsg>>
      pending_uploads_;
  /// Lead only: slices buffered by round then server index.
  std::map<std::uint64_t, std::map<std::uint32_t, SliceAggregateMsg>>
      pending_slices_;
  std::size_t joined_workers_ = 0;
  std::size_t joined_servers_ = 0;
};

}  // namespace fifl::net
