// The federation's roles as communicating nodes (Sec. 3.1/3.2 as a
// runtime instead of a loop over std::vector<Worker>).
//
// Topology: N WorkerNodes (keys 0..N-1) and M ServerNodes (keys
// N..N+M-1). Server 0 — the "lead" — drives the round state machine:
//
//   lead:    ModelBroadcast θ_t ──► workers
//   worker:  local SGD + behaviour ──► GradientUpload to EVERY server
//   server:  deterministic FiflEngine replica over the canonical upload
//            vector ──► SliceAggregate (its slice of G̃) to the lead
//   lead:    recombine M slices ──► θ_{t+1}; AssessmentResult (per-worker
//            accept/reputation/reward + signed ledger records) ──► workers
//
// Every server runs the full assessment pipeline on the full upload set
// (deterministic state-machine replication — the replicas stay
// bit-identical, which the lead checks against the slices it receives);
// only the aggregated slices travel on the server→lead path, keeping the
// paper's polycentric bandwidth shape on the wire. Uploads are buffered
// into per-worker slots and processed in worker-id order, so results are
// independent of message arrival order by construction. Each phase waits
// under a timeout; workers that miss it become "uncertain events",
// exactly like channel losses in the simulator.
//
// Crash-fault tolerance (quorum rounds):
//   - Workers heartbeat the lead every NodeTimeouts::heartbeat; a worker
//     silent for NodeTimeouts::liveness is declared dead (net.dropped_
//     workers), removed from the roster, and skipped until it speaks
//     again — a returning worker is re-homed at the next ModelBroadcast
//     (net.worker_rejoins) and catches up from the current θ.
//   - After the phase deadline the lead proceeds if at least
//     ceil(quorum.min_fraction · N) uploads were counted; missing workers
//     become uncertain events and the round counts into
//     net.rounds_degraded. Below quorum the run aborts.
//   - The lead publishes the counted worker set (RoundSummary) to every
//     follower, which feeds its engine exactly that set — so the
//     deterministic replicas stay bit-identical across partial rounds. A
//     follower that cannot reproduce the set (a counted upload never
//     reached it) answers with an incomplete slice and stops processing;
//     the lead tolerates the gap (net.slice_gaps) instead of treating it
//     as divergence. Bitwise slice verification still applies to every
//     complete slice.
//
// Wire compression (negotiated at Join, see fl/compression.hpp):
//   - A worker advertises a codec capability mask in its JoinMsg; the
//     lead answers with the per-worker choice (its CompressionPolicy
//     preference if advertised, kDense otherwise), so mixed-codec
//     clusters work — every server densifies at canonicalize_uploads()
//     and the assessment pipeline never sees a sparse vector.
//   - kTopK uploads carry the keep_fraction largest-magnitude entries as
//     sorted (index, value) pairs.
//   - kDelta broadcasts send only the params whose bits changed since the
//     round the worker last acknowledged (the per-round RTT ping and the
//     uploads themselves double as acks); the lead keeps a bounded
//     history of broadcast θ snapshots and falls back to a dense
//     checkpoint when no usable baseline exists (round 0, rejoins,
//     pruned history) or the delta would not actually be smaller.
//
// Lead failover (ServerNodeConfig::failover, requires replicate_ledger):
//   - Every server can hold a θ replica and drive rounds; "the lead" is
//     just the current executor. Followers watch executor progress
//     (summaries/proposals); past the progress deadline they run a
//     reputation-ranked election (ViewChange/ViewChangeVote) — the
//     highest-reputation live server proposes first, carrying its
//     committed chain head; a quorum of grants makes it the executor, and
//     it re-proposes the chain tip and re-drives the interrupted round
//     from the uploads every server already holds.
//   - Executor rotation (rotate_executor): each RoundSummary names the
//     next round's executor; the handoff completes only once the named
//     successor holds the summary's block committed locally (chain-head
//     handoff), so the chain never forks across a rotation.
//   - A crashed server that comes back replays the committed blocks it
//     missed (ChainSyncRequest/Response: quorum certificates + records +
//     a θ checkpoint), rebuilds its deterministic engine replica
//     bit-identically, and resumes voting (net.server_rejoins).
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "core/fifl.hpp"
#include "fl/simulator.hpp"
#include "net/tracing.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"

namespace fifl::net {

/// Node-key layout helper for one cluster.
struct Topology {
  std::uint32_t workers = 0;
  std::uint32_t servers = 0;

  NodeKey worker_key(std::uint32_t i) const noexcept { return i; }
  NodeKey server_key(std::uint32_t j) const noexcept { return workers + j; }
  NodeKey lead_key() const noexcept { return workers; }
  std::vector<NodeKey> server_keys() const;
};

/// Builds the canonical worker-id-ordered upload vector from upload
/// messages in arbitrary arrival order. Slot i holds worker i's message
/// (duplicates: last wins); workers with no message become absent uploads
/// (arrived = false), i.e. uncertain events. This is the single point
/// that makes server assessment independent of wire ordering.
std::vector<fl::Upload> canonicalize_uploads(
    std::span<const GradientUploadMsg> msgs, std::size_t workers);

struct NodeTimeouts {
  std::chrono::milliseconds join{10000};
  std::chrono::milliseconds phase{10000};
  /// Interval between worker -> lead liveness heartbeats.
  std::chrono::milliseconds heartbeat{500};
  /// Silence after which the lead declares a worker dead. Must comfortably
  /// exceed `heartbeat` plus the longest local-training stretch (workers
  /// do not heartbeat while inside make_upload).
  std::chrono::milliseconds liveness{2500};
};

/// Quorum policy for lead rounds (see the header comment).
struct QuorumConfig {
  /// Fraction of the worker roster whose uploads must be counted for the
  /// round to proceed; ceil(min_fraction * workers), at least 1.
  double min_fraction = 0.5;
};

/// Lead-side wire-compression preferences, applied per worker at Join
/// time: a worker gets the preferred codec iff it advertised support,
/// kDense otherwise. The defaults keep every run byte-identical to the
/// uncompressed protocol.
struct CompressionPolicy {
  fl::Codec upload = fl::Codec::kDense;     // kDense | kTopK
  fl::Codec broadcast = fl::Codec::kDense;  // kDense | kDelta
  /// kTopK keep fraction handed to workers in the JoinAck.
  double topk_keep_fraction = 0.1;
  /// kDelta falls back to a dense checkpoint when the sparse encoding
  /// would be at least as large (break-even: half the params changed).
  /// Tests disable the fallback to force the delta path deterministically.
  bool delta_dense_fallback = true;
};

/// Per-round outcome collected by the lead server.
struct NetRoundResult {
  std::uint64_t round = 0;
  std::string model_hash;  // sha256 hex of θ_{t+1}
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t uncertain = 0;
  bool degraded = false;
  double fairness = 0.0;
  std::vector<double> reputations;
  std::vector<double> rewards;
  /// Uploads counted toward this round (== workers on a full round).
  std::size_t counted = 0;
  /// Roster size after liveness pruning, when the round closed.
  std::size_t live_workers = 0;
  /// Per-worker upload arrival this round (absent => uncertain event).
  std::vector<std::uint8_t> arrived;
};

/// sha256 hex digest of a flat parameter vector (the equivalence
/// fingerprint both runtimes are compared on).
std::string parameter_hash(std::span<const float> params);

/// Worker-side audit configuration: when enabled, the worker queries the
/// lead for a Merkle proof of its own reputation record after every
/// assessment (except the final round's, whose answer would race the
/// Leave) and verifies the returned bundle against its own KeyRegistry
/// replica — built from `key_seed`, trusting no server.
struct WorkerAuditConfig {
  bool enabled = false;
  std::uint64_t key_seed = 0;
};

/// One worker-side audit round trip and its local verdict.
struct WorkerAuditOutcome {
  std::uint64_t round = 0;
  bool verified = false;
};

class WorkerNode {
 public:
  /// `supported_codecs` is the capability mask advertised in the JoinMsg
  /// (must include fl::Codec::kDense, the negotiation fallback).
  WorkerNode(std::unique_ptr<fl::Worker> worker,
             std::unique_ptr<Endpoint> endpoint, Topology topology,
             NodeTimeouts timeouts,
             std::uint32_t supported_codecs = fl::kAllCodecs,
             WorkerAuditConfig audit = {});

  /// Event loop: join, then train on every ModelBroadcast until Leave.
  /// Runs on the caller's thread (the cluster gives each node one).
  void run();

  void request_stop();

  /// Rewards this worker saw in its AssessmentResults (bookkeeping the
  /// incentive actually delivered to the node).
  const std::vector<double>& observed_rewards() const noexcept {
    return observed_rewards_;
  }

  /// Locally verified AuditProof round trips (audit-enabled runs only),
  /// in answer-arrival order.
  const std::vector<WorkerAuditOutcome>& audit_outcomes() const noexcept {
    return audit_outcomes_;
  }

 private:
  /// `parent_span` is the wire span id of the broadcast that triggered
  /// the training step (0 when it arrived untraced), so the resulting
  /// uploads nest under it in the merged timeline.
  void handle_broadcast(const ModelBroadcastMsg& msg,
                        std::uint64_t parent_span);
  /// Sends one audit query (with the proof-cache watermark) to server
  /// `server`; failures are logged, the retry timer handles the rest.
  void send_audit_query(std::uint64_t round, std::uint32_t server,
                        std::uint64_t parent_span);
  /// Fallback path: re-aims the pending audit query at the next server
  /// (round-robin) after a liveness window without an answer; gives up
  /// once every server was tried.
  void retry_audit();

  std::unique_ptr<fl::Worker> worker_;
  std::unique_ptr<Endpoint> endpoint_;
  Topology topology_;
  NodeTimeouts timeouts_;
  std::uint32_t supported_codecs_;
  WorkerAuditConfig audit_;
  /// Lazily built PKI replica for verifying audit proofs; rounds learned
  /// from the JoinAck gate the final-round query.
  std::optional<chain::KeyRegistry> audit_registry_;
  std::uint64_t total_rounds_ = 0;
  std::vector<WorkerAuditOutcome> audit_outcomes_;
  /// Resolved once at construction; null members when FIFL_TRACE_DIR is
  /// unset, so every producer site pays one branch on the disabled path.
  NodeTracer tracer_;
  std::atomic<bool> stop_{false};
  std::vector<double> observed_rewards_;
  std::map<std::uint64_t, std::chrono::steady_clock::time_point> ping_sent_;
  /// Negotiated in the JoinAck.
  fl::Codec upload_codec_ = fl::Codec::kDense;
  double keep_fraction_ = 1.0;
  /// Current θ replica for delta broadcasts: the parameters of round
  /// `params_round_` (only trusted once has_params_ is set).
  std::vector<float> params_;
  std::uint64_t params_round_ = 0;
  bool has_params_ = false;
  /// The server this worker currently treats as the lead: heartbeats,
  /// per-round pings and first-try audit queries aim here. Re-homed on
  /// every broadcast/assessment from a server, so a re-elected or rotated
  /// executor picks the roster up at its first fan-out.
  NodeKey current_lead_ = 0;
  /// Highest round trained so far and the upload it produced. A duplicate
  /// broadcast (a re-elected executor re-driving the round) re-sends the
  /// cached upload instead of retraining — retraining would advance the
  /// local RNG and fork this worker off the deterministic reference
  /// sequence.
  bool has_trained_ = false;
  std::uint64_t last_trained_round_ = 0;
  GradientUploadMsg cached_upload_;
  /// Audit-proof cache: committed headers [0, size) this worker already
  /// verified; AuditQueryMsg::last_verified_index lets servers ship only
  /// the suffix.
  std::vector<chain::SealedBlockHeader> verified_headers_;
  /// The one in-flight audit round trip and its retry state.
  struct PendingAudit {
    std::uint64_t round = 0;
    std::chrono::steady_clock::time_point deadline;
    std::uint32_t tried = 0;   // servers queried so far
    std::uint32_t cursor = 0;  // server index queried last
  };
  std::optional<PendingAudit> pending_audit_;
};

struct ServerNodeConfig {
  std::uint32_t server_index = 0;  // 0 = lead
  std::size_t rounds = 0;          // lead only: rounds to drive
  double global_learning_rate = 0.05;
  NodeTimeouts timeouts;
  QuorumConfig quorum;
  CompressionPolicy compression;  // lead only: negotiation preferences
  /// Replicated audit ledger (chain/replicated.hpp): the lead proposes
  /// every sealed block to the followers and only proceeds on a signature
  /// quorum; followers recompute each proposed block and vote. Off by
  /// default — the message flow (and its latency) is additive, the engine
  /// inputs are untouched, so enabling it preserves bit-for-bit parity
  /// with the Simulator.
  bool replicate_ledger = false;
  /// Key seed for the ledger PKI replica (FiflConfig::key_seed).
  std::uint64_t ledger_key_seed = 0;
  /// Executor rotation: each RoundSummary names the next live server
  /// (round-robin) as the next round's executor; the handoff completes
  /// only once the successor holds the summary's block committed locally.
  /// Requires replicate_ledger and a θ replica on every server.
  bool rotate_executor = false;
  /// Lead failover: followers detect a silent executor, elect the
  /// highest-reputation live server by signed quorum vote, and a crashed
  /// server rejoins by replaying the committed blocks it missed. Requires
  /// replicate_ledger and a θ replica on every server.
  bool failover = false;
};

class ServerNode {
 public:
  /// `global_model` must be non-null for server 0 (the bootstrap lead) and
  /// for every server when rotation/failover is on (any server may become
  /// the executor); a plain follower may run θ-less.
  ServerNode(ServerNodeConfig config, std::unique_ptr<core::FiflEngine> engine,
             std::unique_ptr<nn::Sequential> global_model,
             std::unique_ptr<Endpoint> endpoint, Topology topology);

  using RoundCallback =
      std::function<void(const NetRoundResult&, std::span<const float>)>;
  void set_round_callback(RoundCallback callback) {
    round_callback_ = std::move(callback);
  }
  /// Where the lead's per-round traces go (nullptr = process-global).
  void set_trace_recorder(obs::RoundTraceRecorder* recorder) {
    trace_recorder_ = recorder;
  }

  void run();
  void request_stop();

  /// The bootstrap lead (server 0): runs the join gate and drives round 0.
  bool is_lead() const noexcept { return config_.server_index == 0; }
  /// True while this server is the round executor (rotation and elections
  /// move the role at runtime; without them it stays on server 0).
  bool is_executor() const noexcept {
    return executor_index_ == config_.server_index;
  }
  const std::vector<NetRoundResult>& results() const noexcept {
    return results_;
  }
  const core::FiflEngine& engine() const noexcept { return *engine_; }
  nn::Sequential* global_model() noexcept { return global_model_.get(); }
  /// Rounds applied to this server's θ replica (0 for θ-less followers);
  /// the freshest replica is the cluster's final model.
  std::uint64_t theta_rounds() const noexcept { return theta_round_; }
  /// The replicated-ledger state (nullptr unless replicate_ledger):
  /// executors hold quorum certificates, followers their endorsed headers
  /// plus every broadcast vote they observed.
  const chain::ReplicatedLedger* replicated_ledger() const noexcept {
    return replicated_.get();
  }

 private:
  /// Sentinel executor index: the previous executor retired or was
  /// demoted and no successor is known yet — the next RoundSummary or
  /// election resolves it.
  static constexpr std::uint32_t kUnknownExecutor = 0xffffffffu;

  /// Server 0's join gate: waits for the full federation.
  void await_federation();
  /// Follower join handshake with the bootstrap lead.
  void join_federation();
  void run_executor();
  void run_follower();
  /// Lead: waits until every live worker has a slot or the deadline
  /// passes, echoing heartbeats, buffering slices, and pruning the roster
  /// through the liveness window meanwhile.
  void collect_uploads(std::uint64_t round,
                       std::map<std::uint32_t, GradientUploadMsg>& slots,
                       std::chrono::steady_clock::time_point deadline);
  /// Lead: routes one inbound upload — slot / buffer-ahead / late / from a
  /// dead worker. `slots` is null outside the collect window.
  void lead_handle_upload(GradientUploadMsg msg, std::uint64_t round,
                          std::map<std::uint32_t, GradientUploadMsg>* slots);
  /// Follower: runs (or refuses) one round against the executor's counted
  /// set; the slice answer goes back to `executor`.
  void process_summary(const RoundSummaryMsg& summary, NodeKey executor);
  void handle_control(const Envelope& envelope);
  void note_worker_traffic(NodeKey from);
  /// Any server: verifies + folds one broadcast vote into the local
  /// certificate; votes racing ahead of this replica's own endorsement
  /// are parked in pending_votes_. A contradicting block hash is a ledger
  /// fork (postmortem dump + throw).
  void apply_block_vote(const BlockVoteMsg& msg);
  /// Replays the votes parked for `block_index` once the entry exists.
  void drain_pending_votes(std::uint64_t block_index);
  /// Follower: recomputes every buffered proposal the local ledger has
  /// sealed and answers with a signed vote to every server; a mismatch is
  /// a ledger fork.
  void follower_vote_on_proposals();
  /// Executor: drains votes until block `r` commits or the phase deadline
  /// passes. Returns false when the deadline hit and failover demoted this
  /// node to follower (the caller must abandon the round); without
  /// failover the deadline is a deterministic abort.
  bool await_ledger_commit(std::uint64_t r);
  /// Fan-out helper: sends `msg` to every other server (dead ones
  /// included — their inboxes are cheap and liveness is their problem).
  template <typename Msg>
  void send_to_other_servers(MessageType type, const Msg& msg,
                             std::uint64_t round);
  /// The next live server after `self` in index order (rotation target);
  /// `self` when every other server is dead.
  std::uint32_t next_live_server(std::uint32_t self) const;
  /// Hash of the last committed block (zero digest when none).
  chain::Digest committed_head() const;
  /// Voter side of the election: verify the proposal signature, grant iff
  /// the proposer's committed chain is at least ours (nack carries our
  /// head so a behind proposer can sync), re-home on the granted winner.
  void handle_view_change(const ViewChangeMsg& msg);
  /// Follower side of a failed executor: reputation-ranked backoff, the
  /// signed proposal fan-out, grant counting, takeover (true) or standing
  /// down for a better candidate (false). Throws with a
  /// "view_change_abort" postmortem when no quorum forms in time.
  bool run_election();
  /// Rotation handoff: waits (≤ one phase) until block `r` is committed
  /// locally before assuming the executor role named in the summary.
  bool await_handoff_commit(std::uint64_t r);
  /// Rejoin-by-replay client: one ChainSyncRequest to `target` (rate
  /// limited to one per phase) and the blocking wait for its response.
  /// True when the local replica advanced.
  bool request_chain_sync(NodeKey target);
  /// Applies one sync response: catch_up_block for blocks the engine is
  /// missing, adopt_committed for every shipped certificate, θ checkpoint
  /// restore, and the rejoin bookkeeping.
  bool apply_chain_sync(const ChainSyncResponseMsg& resp);
  /// Serves a ChainSyncRequest when this replica sits exactly on a round
  /// boundary (θ rounds == committed prefix); answers ok == 0 otherwise.
  void serve_chain_sync(const ChainSyncRequestMsg& req, NodeKey from);

  ServerNodeConfig config_;
  std::unique_ptr<core::FiflEngine> engine_;
  std::unique_ptr<nn::Sequential> global_model_;
  std::unique_ptr<Endpoint> endpoint_;
  Topology topology_;
  /// See WorkerNode::tracer_.
  NodeTracer tracer_;
  std::atomic<bool> stop_{false};
  bool leave_received_ = false;
  RoundCallback round_callback_;
  obs::RoundTraceRecorder* trace_recorder_ = nullptr;
  std::vector<NetRoundResult> results_;
  /// Uploads buffered ahead of their round (a worker can race ahead of a
  /// lagging follower), keyed by round then worker.
  std::map<std::uint64_t, std::map<std::uint32_t, GradientUploadMsg>>
      pending_uploads_;
  /// Lead only: slices buffered by round then server index.
  std::map<std::uint64_t, std::map<std::uint32_t, SliceAggregateMsg>>
      pending_slices_;
  std::size_t joined_workers_ = 0;
  std::size_t joined_servers_ = 0;
  /// Lead only: liveness bookkeeping (last traffic per worker, workers
  /// declared dead, dead workers that spoke again and re-home at the next
  /// broadcast).
  std::map<NodeKey, std::chrono::steady_clock::time_point> last_seen_;
  std::set<NodeKey> dead_workers_;
  std::set<NodeKey> revive_pending_;
  /// Follower only: executor summaries not yet processed (plus who sent
  /// each, the ChainSync target for gaps), and whether this replica has
  /// permanently lost sync with the executor's counted sequence (failover
  /// off; with failover on a gap triggers rejoin-by-replay instead).
  std::map<std::uint64_t, RoundSummaryMsg> pending_summaries_;
  std::map<std::uint64_t, NodeKey> summary_sender_;
  bool diverged_ = false;
  /// --- Failover state ---------------------------------------------------
  /// Which server currently drives rounds (kUnknownExecutor after a
  /// demotion/failed handoff), the view-change epoch, the highest view
  /// this node granted, and the servers known dead (skipped by rotation
  /// and elections; a rejoiner resumes voting but is not rotated back in).
  std::uint32_t executor_index_ = 0;
  std::uint64_t view_ = 0;
  std::uint64_t granted_view_ = 0;
  /// Highest view this node itself proposed; never granted to others (two
  /// same-view candidates granting each other would elect two executors).
  std::uint64_t proposed_view_ = 0;
  std::set<std::uint32_t> dead_servers_;
  /// Next round this replica expects (followers) or drives (executor).
  std::uint64_t next_round_ = 0;
  /// Rounds applied to the local θ replica.
  std::uint64_t theta_round_ = 0;
  /// All rounds driven and Leave fanned out — the run() dispatcher stops.
  bool done_ = false;
  /// A demoted ex-executor stays out of elections until it hears from the
  /// federation again (losing the worker quorum means *we* were the
  /// partitioned side; proposing into the void would abort the run).
  bool election_muted_ = false;
  /// Grant/nack replies to this node's own ViewChange proposal.
  std::vector<ViewChangeVoteMsg> election_votes_;
  /// Broadcast votes that raced ahead of this replica's own endorsement,
  /// parked by block index.
  std::map<std::uint64_t, std::vector<BlockVoteMsg>> pending_votes_;
  /// Rate limiter for ChainSyncRequest retries.
  std::chrono::steady_clock::time_point last_sync_request_{};
  /// Replicated-ledger state (null unless config_.replicate_ledger).
  std::unique_ptr<chain::ReplicatedLedger> replicated_;
  /// Follower only: block proposals buffered until the local replica has
  /// sealed the corresponding block, keyed by block index.
  std::map<std::uint64_t, BlockProposalMsg> pending_proposals_;
  /// Lead only: per-worker negotiated broadcast codec (absent = kDense),
  /// the latest round each worker acknowledged holding θ for (from round
  /// pings and uploads; erased when the worker is declared dead so a
  /// rejoin re-bases on a dense checkpoint), and the bounded history of
  /// broadcast θ snapshots delta encoding bases on.
  std::map<NodeKey, fl::Codec> peer_broadcast_codec_;
  std::map<NodeKey, std::uint64_t> acked_round_;
  std::map<std::uint64_t, std::vector<float>> broadcast_history_;

  void note_broadcast_ack(NodeKey worker, std::uint64_t round);
  /// Lead: builds worker i's broadcast for round r — `dense` when no
  /// usable delta baseline exists or the delta would not be smaller.
  const ModelBroadcastMsg& broadcast_for(
      std::uint32_t worker, const ModelBroadcastMsg& dense,
      std::span<const float> theta,
      std::map<std::uint64_t, std::optional<ModelBroadcastMsg>>& delta_cache);
};

}  // namespace fifl::net
