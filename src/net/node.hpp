// The federation's roles as communicating nodes (Sec. 3.1/3.2 as a
// runtime instead of a loop over std::vector<Worker>).
//
// Topology: N WorkerNodes (keys 0..N-1) and M ServerNodes (keys
// N..N+M-1). Server 0 — the "lead" — drives the round state machine:
//
//   lead:    ModelBroadcast θ_t ──► workers
//   worker:  local SGD + behaviour ──► GradientUpload to EVERY server
//   server:  deterministic FiflEngine replica over the canonical upload
//            vector ──► SliceAggregate (its slice of G̃) to the lead
//   lead:    recombine M slices ──► θ_{t+1}; AssessmentResult (per-worker
//            accept/reputation/reward + signed ledger records) ──► workers
//
// Every server runs the full assessment pipeline on the full upload set
// (deterministic state-machine replication — the replicas stay
// bit-identical, which the lead checks against the slices it receives);
// only the aggregated slices travel on the server→lead path, keeping the
// paper's polycentric bandwidth shape on the wire. Uploads are buffered
// into per-worker slots and processed in worker-id order, so results are
// independent of message arrival order by construction. Each phase waits
// under a timeout; workers that miss it become "uncertain events",
// exactly like channel losses in the simulator.
//
// Crash-fault tolerance (quorum rounds):
//   - Workers heartbeat the lead every NodeTimeouts::heartbeat; a worker
//     silent for NodeTimeouts::liveness is declared dead (net.dropped_
//     workers), removed from the roster, and skipped until it speaks
//     again — a returning worker is re-homed at the next ModelBroadcast
//     (net.worker_rejoins) and catches up from the current θ.
//   - After the phase deadline the lead proceeds if at least
//     ceil(quorum.min_fraction · N) uploads were counted; missing workers
//     become uncertain events and the round counts into
//     net.rounds_degraded. Below quorum the run aborts.
//   - The lead publishes the counted worker set (RoundSummary) to every
//     follower, which feeds its engine exactly that set — so the
//     deterministic replicas stay bit-identical across partial rounds. A
//     follower that cannot reproduce the set (a counted upload never
//     reached it) answers with an incomplete slice and stops processing;
//     the lead tolerates the gap (net.slice_gaps) instead of treating it
//     as divergence. Bitwise slice verification still applies to every
//     complete slice.
//
// Wire compression (negotiated at Join, see fl/compression.hpp):
//   - A worker advertises a codec capability mask in its JoinMsg; the
//     lead answers with the per-worker choice (its CompressionPolicy
//     preference if advertised, kDense otherwise), so mixed-codec
//     clusters work — every server densifies at canonicalize_uploads()
//     and the assessment pipeline never sees a sparse vector.
//   - kTopK uploads carry the keep_fraction largest-magnitude entries as
//     sorted (index, value) pairs.
//   - kDelta broadcasts send only the params whose bits changed since the
//     round the worker last acknowledged (the per-round RTT ping and the
//     uploads themselves double as acks); the lead keeps a bounded
//     history of broadcast θ snapshots and falls back to a dense
//     checkpoint when no usable baseline exists (round 0, rejoins,
//     pruned history) or the delta would not actually be smaller.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "core/fifl.hpp"
#include "fl/simulator.hpp"
#include "net/tracing.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"

namespace fifl::net {

/// Node-key layout helper for one cluster.
struct Topology {
  std::uint32_t workers = 0;
  std::uint32_t servers = 0;

  NodeKey worker_key(std::uint32_t i) const noexcept { return i; }
  NodeKey server_key(std::uint32_t j) const noexcept { return workers + j; }
  NodeKey lead_key() const noexcept { return workers; }
  std::vector<NodeKey> server_keys() const;
};

/// Builds the canonical worker-id-ordered upload vector from upload
/// messages in arbitrary arrival order. Slot i holds worker i's message
/// (duplicates: last wins); workers with no message become absent uploads
/// (arrived = false), i.e. uncertain events. This is the single point
/// that makes server assessment independent of wire ordering.
std::vector<fl::Upload> canonicalize_uploads(
    std::span<const GradientUploadMsg> msgs, std::size_t workers);

struct NodeTimeouts {
  std::chrono::milliseconds join{10000};
  std::chrono::milliseconds phase{10000};
  /// Interval between worker -> lead liveness heartbeats.
  std::chrono::milliseconds heartbeat{500};
  /// Silence after which the lead declares a worker dead. Must comfortably
  /// exceed `heartbeat` plus the longest local-training stretch (workers
  /// do not heartbeat while inside make_upload).
  std::chrono::milliseconds liveness{2500};
};

/// Quorum policy for lead rounds (see the header comment).
struct QuorumConfig {
  /// Fraction of the worker roster whose uploads must be counted for the
  /// round to proceed; ceil(min_fraction * workers), at least 1.
  double min_fraction = 0.5;
};

/// Lead-side wire-compression preferences, applied per worker at Join
/// time: a worker gets the preferred codec iff it advertised support,
/// kDense otherwise. The defaults keep every run byte-identical to the
/// uncompressed protocol.
struct CompressionPolicy {
  fl::Codec upload = fl::Codec::kDense;     // kDense | kTopK
  fl::Codec broadcast = fl::Codec::kDense;  // kDense | kDelta
  /// kTopK keep fraction handed to workers in the JoinAck.
  double topk_keep_fraction = 0.1;
  /// kDelta falls back to a dense checkpoint when the sparse encoding
  /// would be at least as large (break-even: half the params changed).
  /// Tests disable the fallback to force the delta path deterministically.
  bool delta_dense_fallback = true;
};

/// Per-round outcome collected by the lead server.
struct NetRoundResult {
  std::uint64_t round = 0;
  std::string model_hash;  // sha256 hex of θ_{t+1}
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t uncertain = 0;
  bool degraded = false;
  double fairness = 0.0;
  std::vector<double> reputations;
  std::vector<double> rewards;
  /// Uploads counted toward this round (== workers on a full round).
  std::size_t counted = 0;
  /// Roster size after liveness pruning, when the round closed.
  std::size_t live_workers = 0;
  /// Per-worker upload arrival this round (absent => uncertain event).
  std::vector<std::uint8_t> arrived;
};

/// sha256 hex digest of a flat parameter vector (the equivalence
/// fingerprint both runtimes are compared on).
std::string parameter_hash(std::span<const float> params);

/// Worker-side audit configuration: when enabled, the worker queries the
/// lead for a Merkle proof of its own reputation record after every
/// assessment (except the final round's, whose answer would race the
/// Leave) and verifies the returned bundle against its own KeyRegistry
/// replica — built from `key_seed`, trusting no server.
struct WorkerAuditConfig {
  bool enabled = false;
  std::uint64_t key_seed = 0;
};

/// One worker-side audit round trip and its local verdict.
struct WorkerAuditOutcome {
  std::uint64_t round = 0;
  bool verified = false;
};

class WorkerNode {
 public:
  /// `supported_codecs` is the capability mask advertised in the JoinMsg
  /// (must include fl::Codec::kDense, the negotiation fallback).
  WorkerNode(std::unique_ptr<fl::Worker> worker,
             std::unique_ptr<Endpoint> endpoint, Topology topology,
             NodeTimeouts timeouts,
             std::uint32_t supported_codecs = fl::kAllCodecs,
             WorkerAuditConfig audit = {});

  /// Event loop: join, then train on every ModelBroadcast until Leave.
  /// Runs on the caller's thread (the cluster gives each node one).
  void run();

  void request_stop();

  /// Rewards this worker saw in its AssessmentResults (bookkeeping the
  /// incentive actually delivered to the node).
  const std::vector<double>& observed_rewards() const noexcept {
    return observed_rewards_;
  }

  /// Locally verified AuditProof round trips (audit-enabled runs only),
  /// in answer-arrival order.
  const std::vector<WorkerAuditOutcome>& audit_outcomes() const noexcept {
    return audit_outcomes_;
  }

 private:
  /// `parent_span` is the wire span id of the broadcast that triggered
  /// the training step (0 when it arrived untraced), so the resulting
  /// uploads nest under it in the merged timeline.
  void handle_broadcast(const ModelBroadcastMsg& msg,
                        std::uint64_t parent_span);

  std::unique_ptr<fl::Worker> worker_;
  std::unique_ptr<Endpoint> endpoint_;
  Topology topology_;
  NodeTimeouts timeouts_;
  std::uint32_t supported_codecs_;
  WorkerAuditConfig audit_;
  /// Lazily built PKI replica for verifying audit proofs; rounds learned
  /// from the JoinAck gate the final-round query.
  std::optional<chain::KeyRegistry> audit_registry_;
  std::uint64_t total_rounds_ = 0;
  std::vector<WorkerAuditOutcome> audit_outcomes_;
  /// Resolved once at construction; null members when FIFL_TRACE_DIR is
  /// unset, so every producer site pays one branch on the disabled path.
  NodeTracer tracer_;
  std::atomic<bool> stop_{false};
  std::vector<double> observed_rewards_;
  std::map<std::uint64_t, std::chrono::steady_clock::time_point> ping_sent_;
  /// Negotiated in the JoinAck.
  fl::Codec upload_codec_ = fl::Codec::kDense;
  double keep_fraction_ = 1.0;
  /// Current θ replica for delta broadcasts: the parameters of round
  /// `params_round_` (only trusted once has_params_ is set).
  std::vector<float> params_;
  std::uint64_t params_round_ = 0;
  bool has_params_ = false;
};

struct ServerNodeConfig {
  std::uint32_t server_index = 0;  // 0 = lead
  std::size_t rounds = 0;          // lead only: rounds to drive
  double global_learning_rate = 0.05;
  NodeTimeouts timeouts;
  QuorumConfig quorum;
  CompressionPolicy compression;  // lead only: negotiation preferences
  /// Replicated audit ledger (chain/replicated.hpp): the lead proposes
  /// every sealed block to the followers and only proceeds on a signature
  /// quorum; followers recompute each proposed block and vote. Off by
  /// default — the message flow (and its latency) is additive, the engine
  /// inputs are untouched, so enabling it preserves bit-for-bit parity
  /// with the Simulator.
  bool replicate_ledger = false;
  /// Key seed for the ledger PKI replica (FiflConfig::key_seed).
  std::uint64_t ledger_key_seed = 0;
};

class ServerNode {
 public:
  /// Non-lead constructor: an engine replica and an endpoint.
  /// `global_model` must be non-null iff server_index == 0; the lead owns
  /// θ and drives the round loop.
  ServerNode(ServerNodeConfig config, std::unique_ptr<core::FiflEngine> engine,
             std::unique_ptr<nn::Sequential> global_model,
             std::unique_ptr<Endpoint> endpoint, Topology topology);

  using RoundCallback =
      std::function<void(const NetRoundResult&, std::span<const float>)>;
  void set_round_callback(RoundCallback callback) {
    round_callback_ = std::move(callback);
  }
  /// Where the lead's per-round traces go (nullptr = process-global).
  void set_trace_recorder(obs::RoundTraceRecorder* recorder) {
    trace_recorder_ = recorder;
  }

  void run();
  void request_stop();

  bool is_lead() const noexcept { return config_.server_index == 0; }
  const std::vector<NetRoundResult>& results() const noexcept {
    return results_;
  }
  const core::FiflEngine& engine() const noexcept { return *engine_; }
  nn::Sequential* global_model() noexcept { return global_model_.get(); }
  /// The replicated-ledger state (nullptr unless replicate_ledger): the
  /// lead holds quorum certificates, followers their endorsed headers.
  const chain::ReplicatedLedger* replicated_ledger() const noexcept {
    return replicated_.get();
  }

 private:
  void run_lead();
  void run_follower();
  /// Lead: waits until every live worker has a slot or the deadline
  /// passes, echoing heartbeats, buffering slices, and pruning the roster
  /// through the liveness window meanwhile.
  void collect_uploads(std::uint64_t round,
                       std::map<std::uint32_t, GradientUploadMsg>& slots,
                       std::chrono::steady_clock::time_point deadline);
  /// Lead: routes one inbound upload — slot / buffer-ahead / late / from a
  /// dead worker. `slots` is null outside the collect window.
  void lead_handle_upload(GradientUploadMsg msg, std::uint64_t round,
                          std::map<std::uint32_t, GradientUploadMsg>* slots);
  /// Follower: runs (or refuses) one round against the lead's counted set.
  void process_summary(const RoundSummaryMsg& summary);
  void handle_control(const Envelope& envelope);
  void note_worker_traffic(NodeKey from);
  /// Lead: verifies + folds one follower vote; a contradicting block hash
  /// is a ledger fork (postmortem dump + throw).
  void lead_handle_vote(const BlockVoteMsg& msg);
  /// Follower: recomputes every buffered proposal the local ledger has
  /// sealed and answers with a signed vote; a mismatch is a ledger fork.
  void follower_vote_on_proposals();
  /// Lead: drains votes until block `r` commits or the phase deadline
  /// passes (deterministic abort).
  void await_ledger_commit(std::uint64_t r);

  ServerNodeConfig config_;
  std::unique_ptr<core::FiflEngine> engine_;
  std::unique_ptr<nn::Sequential> global_model_;
  std::unique_ptr<Endpoint> endpoint_;
  Topology topology_;
  /// See WorkerNode::tracer_.
  NodeTracer tracer_;
  std::atomic<bool> stop_{false};
  bool leave_received_ = false;
  RoundCallback round_callback_;
  obs::RoundTraceRecorder* trace_recorder_ = nullptr;
  std::vector<NetRoundResult> results_;
  /// Uploads buffered ahead of their round (a worker can race ahead of a
  /// lagging follower), keyed by round then worker.
  std::map<std::uint64_t, std::map<std::uint32_t, GradientUploadMsg>>
      pending_uploads_;
  /// Lead only: slices buffered by round then server index.
  std::map<std::uint64_t, std::map<std::uint32_t, SliceAggregateMsg>>
      pending_slices_;
  std::size_t joined_workers_ = 0;
  std::size_t joined_servers_ = 0;
  /// Lead only: liveness bookkeeping (last traffic per worker, workers
  /// declared dead, dead workers that spoke again and re-home at the next
  /// broadcast).
  std::map<NodeKey, std::chrono::steady_clock::time_point> last_seen_;
  std::set<NodeKey> dead_workers_;
  std::set<NodeKey> revive_pending_;
  /// Follower only: lead summaries not yet processed, and whether this
  /// replica has permanently lost sync with the lead's counted sequence.
  std::map<std::uint64_t, RoundSummaryMsg> pending_summaries_;
  bool diverged_ = false;
  /// Replicated-ledger state (null unless config_.replicate_ledger).
  std::unique_ptr<chain::ReplicatedLedger> replicated_;
  /// Follower only: block proposals buffered until the local replica has
  /// sealed the corresponding block, keyed by block index.
  std::map<std::uint64_t, BlockProposalMsg> pending_proposals_;
  /// Lead only: per-worker negotiated broadcast codec (absent = kDense),
  /// the latest round each worker acknowledged holding θ for (from round
  /// pings and uploads; erased when the worker is declared dead so a
  /// rejoin re-bases on a dense checkpoint), and the bounded history of
  /// broadcast θ snapshots delta encoding bases on.
  std::map<NodeKey, fl::Codec> peer_broadcast_codec_;
  std::map<NodeKey, std::uint64_t> acked_round_;
  std::map<std::uint64_t, std::vector<float>> broadcast_history_;

  void note_broadcast_ack(NodeKey worker, std::uint64_t round);
  /// Lead: builds worker i's broadcast for round r — `dense` when no
  /// usable delta baseline exists or the delta would not be smaller.
  const ModelBroadcastMsg& broadcast_for(
      std::uint32_t worker, const ModelBroadcastMsg& dense,
      std::span<const float> theta,
      std::map<std::uint64_t, std::optional<ModelBroadcastMsg>>& delta_cache);
};

}  // namespace fifl::net
