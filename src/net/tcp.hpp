// TCP transport: real localhost sockets, length-prefixed frames.
//
// Each endpoint binds a listening socket on 127.0.0.1 with an ephemeral
// port (the transport records the actual port, so parallel test runs can
// never collide) and runs one accept thread; each accepted connection
// gets a reader thread that feeds a FrameDecoder and pushes complete
// frames into the endpoint's inbox. Outbound, the endpoint keeps one
// lazily-connected socket per peer, serialized by a per-peer mutex.
//
// A connection whose stream fails to decode (bad magic/CRC/oversized
// length) is dropped and counted in net.frame_errors — the peer's next
// send will reconnect. Multi-machine operation needs an explicit
// host:port map instead of the in-process port table; see ROADMAP.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "net/transport.hpp"

namespace fifl::net {

class TcpEndpoint;

/// Bounded exponential backoff for TcpEndpoint::send: attempt k (1-based)
/// reconnects and retries after base_delay * 2^(k-1). Delays carry no
/// jitter on purpose — retry timing stays deterministic for tests. Each
/// retry counts into net.send_retries; exhausting the budget counts into
/// net.send_failures and rethrows.
struct TcpRetryPolicy {
  int max_attempts = 4;
  std::chrono::milliseconds base_delay{10};
};

class TcpTransport : public Transport {
 public:
  TcpTransport() = default;

  void set_retry_policy(TcpRetryPolicy policy) noexcept { retry_ = policy; }
  TcpRetryPolicy retry_policy() const noexcept { return retry_; }

  /// Binds 127.0.0.1:<ephemeral> for `address` and starts its accept
  /// thread.
  std::unique_ptr<Endpoint> open(NodeKey address) override;

  /// Actual listening port of an opened endpoint (for diagnostics).
  std::uint16_t port_of(NodeKey address) const;

 private:
  friend class TcpEndpoint;
  std::uint16_t lookup(NodeKey address) const;

  // lock-order: tcp_ports; guards ports_
  mutable util::Mutex mutex_;
  std::map<NodeKey, std::uint16_t> ports_ FIFL_GUARDED_BY(mutex_);
  TcpRetryPolicy retry_;
};

class TcpEndpoint : public Endpoint {
 public:
  TcpEndpoint(TcpTransport* transport, NodeKey address);
  ~TcpEndpoint() override;

  NodeKey address() const noexcept override { return address_; }
  std::uint16_t port() const noexcept { return port_; }

  void send(NodeKey to, MessageType type,
            std::span<const std::uint8_t> payload,
            const obs::TraceContext* trace = nullptr) override;
  std::optional<Envelope> recv(std::chrono::milliseconds timeout) override;
  void close() override;

 private:
  struct PeerConn {
    // `fd` is left off the lint `guards` list on purpose: R8 matches field
    // names lexically and `fd` collides with the socket locals in tcp.cpp;
    // the TSA attribute below carries the contract instead. The `before`
    // edge documents send() calling transport_->lookup() (tcp_ports) while
    // holding the peer lock — interprocedural, so R6 cannot observe it.
    // lock-order: tcp_peer_conn before tcp_ports
    util::Mutex mutex;
    int fd FIFL_GUARDED_BY(mutex) = -1;
  };

  void accept_loop();
  void reader_loop(int fd);
  int connect_to(std::uint16_t port);

  TcpTransport* transport_;
  NodeKey address_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  Inbox inbox_;
  std::atomic<bool> closing_{false};
  std::thread accept_thread_;

  // lock-order: tcp_readers; guards readers_, reader_fds_
  util::Mutex readers_mutex_;
  std::vector<std::thread> readers_ FIFL_GUARDED_BY(readers_mutex_);
  std::vector<int> reader_fds_ FIFL_GUARDED_BY(readers_mutex_);

  // lock-order: tcp_peers before tcp_peer_conn; guards peers_
  util::Mutex peers_mutex_;
  std::map<NodeKey, std::unique_ptr<PeerConn>> peers_
      FIFL_GUARDED_BY(peers_mutex_);
};

}  // namespace fifl::net
