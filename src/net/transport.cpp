#include "net/transport.hpp"

#include <stdexcept>
#include <string>

#include "net/frame.hpp"

namespace fifl::net {

NetMetrics& NetMetrics::global() {
  static NetMetrics metrics = [] {
    auto& reg = obs::MetricsRegistry::global();
    NetMetrics m{};
    m.bytes_tx = &reg.counter("net.bytes_tx");
    m.bytes_rx = &reg.counter("net.bytes_rx");
    for (std::size_t i = 0; i < kMessageTypeCount; ++i) {
      const char* name =
          message_type_name(static_cast<MessageType>(i + 1));
      m.bytes_tx_type[i] = &reg.counter(std::string("net.bytes_tx.") + name);
      m.bytes_rx_type[i] = &reg.counter(std::string("net.bytes_rx.") + name);
    }
    m.msgs_tx = &reg.counter("net.msgs_tx");
    m.msgs_rx = &reg.counter("net.msgs_rx");
    m.frame_errors = &reg.counter("net.frame_errors");
    m.rtt_ms = &reg.histogram("net.rtt_ms");
    for (std::size_t i = 0; i < kMessageTypeCount; ++i) {
      const char* name =
          message_type_name(static_cast<MessageType>(i + 1));
      m.handle_ms_type[i] =
          &reg.histogram(std::string("net.handle_ms.") + name);
    }
    m.phase_broadcast_ms = &reg.histogram("net.phase.broadcast_ms");
    m.phase_collect_ms = &reg.histogram("net.phase.collect_ms");
    m.phase_assess_ms = &reg.histogram("net.phase.assess_ms");
    m.phase_ledger_commit_ms = &reg.histogram("net.phase.ledger_commit_ms");
    m.send_retries = &reg.counter("net.send_retries");
    m.send_failures = &reg.counter("net.send_failures");
    m.late_uploads = &reg.counter("net.late_uploads");
    m.dead_uploads = &reg.counter("net.dead_uploads");
    m.dropped_workers = &reg.counter("net.dropped_workers");
    m.worker_rejoins = &reg.counter("net.worker_rejoins");
    m.rounds_degraded = &reg.counter("net.rounds_degraded");
    m.slice_gaps = &reg.counter("net.slice_gaps");
    m.faults_injected = &reg.counter("net.faults_injected");
    m.view_changes = &reg.counter("net.view_changes");
    m.server_rejoins = &reg.counter("net.server_rejoins");
    m.election_ms = &reg.histogram("net.election_ms");
    return m;
  }();
  return metrics;
}

void Inbox::push(Envelope envelope) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) return;
    queue_.push_back(std::move(envelope));
  }
  cv_.notify_one();
}

std::optional<Envelope> Inbox::pop(std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  cv_.wait_for(lock, timeout, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  Envelope envelope = std::move(queue_.front());
  queue_.pop_front();
  return envelope;
}

void Inbox::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

namespace {

class LoopbackEndpoint : public Endpoint {
 public:
  LoopbackEndpoint(LoopbackTransport* transport, NodeKey address,
                   std::shared_ptr<Inbox> inbox)
      : transport_(transport), address_(address), inbox_(std::move(inbox)) {}

  ~LoopbackEndpoint() override { close(); }

  NodeKey address() const noexcept override { return address_; }

  void send(NodeKey to, MessageType type,
            std::span<const std::uint8_t> payload,
            const obs::TraceContext* trace) override {
    // Round-trip through the real wire format so loopback tests cover the
    // same encode/decode path TCP uses; the frame layer is not mocked out.
    const std::vector<std::uint8_t> wire =
        encode_frame(static_cast<std::uint8_t>(type), address_, payload, trace);
    auto& metrics = NetMetrics::global();
    FrameDecoder decoder;
    decoder.feed(wire);
    std::optional<Frame> frame;
    try {
      frame = decoder.next();
    } catch (const FrameError&) {
      metrics.frame_errors->inc();
      throw;
    }
    metrics.bytes_tx->inc(wire.size());
    metrics.msgs_tx->inc();
    std::shared_ptr<Inbox> inbox = transport_->inbox_for(to);
    metrics.bytes_rx->inc(wire.size());
    metrics.msgs_rx->inc();
    const std::uint8_t raw = static_cast<std::uint8_t>(type);
    if (obs::Counter* c = metrics.tx_for(raw)) c->inc(wire.size());
    if (obs::Counter* c = metrics.rx_for(raw)) c->inc(wire.size());
    inbox->push(Envelope{frame->from, static_cast<MessageType>(frame->type),
                         std::move(frame->payload), frame->has_trace,
                         frame->trace});
  }

  std::optional<Envelope> recv(std::chrono::milliseconds timeout) override {
    return inbox_->pop(timeout);
  }

  void close() override { inbox_->close(); }

 private:
  LoopbackTransport* transport_;
  NodeKey address_;
  std::shared_ptr<Inbox> inbox_;
};

}  // namespace

std::shared_ptr<Inbox> LoopbackTransport::inbox_for(NodeKey address) {
  util::MutexLock lock(inboxes_mutex_);
  const auto it = inboxes_.find(address);
  if (it == inboxes_.end()) {
    throw std::runtime_error("loopback: no endpoint open for node " +
                             std::to_string(address));
  }
  return it->second;
}

std::unique_ptr<Endpoint> LoopbackTransport::open(NodeKey address) {
  auto inbox = std::make_shared<Inbox>();
  {
    util::MutexLock lock(inboxes_mutex_);
    if (!inboxes_.emplace(address, inbox).second) {
      throw std::runtime_error("loopback: node " + std::to_string(address) +
                               " already open");
    }
  }
  return std::make_unique<LoopbackEndpoint>(this, address, std::move(inbox));
}

}  // namespace fifl::net
