// FaultyTransport: a deterministic, seeded fault-injection decorator over
// any Transport (loopback or TCP), for chaos tests and soak harnesses.
//
// Faults are scripted by a FaultSchedule and fire only on the data plane
// (ModelBroadcast / GradientUpload / RoundSummary / SliceAggregate /
// AssessmentResult); the control plane (Join/JoinAck/Heartbeat/Leave)
// always passes, except out of a crashed node. Supported faults:
//
//   drop       message silently discarded
//   duplicate  message delivered twice
//   delay      message held by a delivery thread for a bounded interval
//   reorder    message held briefly so later traffic on the link overtakes
//   partition  all data traffic on a (from, to) link inside a round window
//              is discarded (the round is read from the message payload)
//   crash      a node stops sending AND receiving forever after its k-th
//              GradientUpload — the mid-round process-death scenario
//   crash-recover  as crash, but with NodeCrash::recover_round set the
//              node comes back: messages that arrive while it is down are
//              discarded (a dead process reads nothing), and the first
//              data-plane message whose payload round reaches
//              recover_round revives it and is delivered — the restarted
//              process rejoining mid-federation
//
// Determinism: probabilistic decisions draw from a private RNG stream per
// (from, to, message-type) triple, keyed by the schedule seed, and every
// message consumes a fixed number of draws whether or not a fault fires.
// Because each node emits its data-plane messages in program order, the
// decision sequence — and therefore the injected-fault log — is a pure
// function of (seed, schedule, workload), independent of thread timing.
// The log's cross-link interleaving is the only nondeterministic part,
// which is why fault_log() returns it canonically sorted.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace fifl::net {

/// Wildcard node key for LinkFaults/LinkPartition endpoints.
inline constexpr NodeKey kAnyNode = 0xffffffffu;

/// Probabilistic faults on one (from, to) link; the first matching entry
/// in FaultSchedule::links wins. kAnyNode matches every node.
struct LinkFaults {
  NodeKey from = kAnyNode;
  NodeKey to = kAnyNode;
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double delay_prob = 0.0;
  std::chrono::milliseconds delay_min{5};
  std::chrono::milliseconds delay_max{25};
  double reorder_prob = 0.0;
  /// How long a reordered message is held back (later traffic overtakes).
  std::chrono::milliseconds reorder_delay{25};

  bool matches(NodeKey f, NodeKey t) const noexcept {
    return (from == kAnyNode || from == f) && (to == kAnyNode || to == t);
  }
  bool any() const noexcept {
    return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0 ||
           reorder_prob > 0.0;
  }
};

/// Deterministic blackout: every data-plane message on the link whose
/// payload round lies in [first_round, last_round] is discarded.
struct LinkPartition {
  NodeKey from = kAnyNode;
  NodeKey to = kAnyNode;
  std::uint64_t first_round = 0;
  std::uint64_t last_round = 0;
};

/// `node` dies immediately after sending its `after_uploads`-th message
/// of `after_type` (default GradientUpload — the mid-round worker death;
/// kBlockProposal models an executor crashing mid-proposal): subsequent
/// sends vanish and recv() goes silent, so the node's event loop exits
/// through its idle timeout like a dead process.
struct NodeCrash {
  NodeKey node = 0;
  std::uint64_t after_uploads = 0;
  MessageType after_type = MessageType::kGradientUpload;
  /// 0 = crash-stop (never returns). Nonzero = crash-recover: the node is
  /// silent while every inbound payload round is below `recover_round`,
  /// then revives on (and receives) the first data-plane message whose
  /// round reaches it. Everything that arrived in between was discarded,
  /// like traffic to a host that was down.
  std::uint64_t recover_round = 0;
};

struct FaultSchedule {
  std::uint64_t seed = 0;
  std::vector<LinkFaults> links;
  std::vector<LinkPartition> partitions;
  std::vector<NodeCrash> crashes;
  /// Byzantine servers: every SliceAggregate these nodes send has its
  /// first value perturbed (deterministically, no RNG draws), so the
  /// lead's replica cross-check observes a divergent engine — the forced
  /// flight-recorder postmortem scenario.
  std::vector<NodeKey> byzantine;

  /// True when no fault can ever fire (the decorator becomes a pass-through
  /// and a run must reproduce the fault-free run bit for bit).
  bool empty() const noexcept;
};

enum class FaultKind : std::uint8_t {
  kDrop = 0,
  kDuplicate = 1,
  kDelay = 2,
  kReorder = 3,
  kPartition = 4,
  kCrash = 5,
  kByzantine = 6,
  kCrashRecover = 7,
};

const char* fault_kind_name(FaultKind kind);

/// One injected fault, as recorded in the transport's log. `seq` is the
/// message's index within its (from, to, type) stream.
struct FaultEvent {
  FaultKind kind = FaultKind::kDrop;
  NodeKey from = 0;
  NodeKey to = 0;
  MessageType type = MessageType::kHeartbeat;
  std::uint64_t seq = 0;
  std::uint64_t delay_ms = 0;  // delay/reorder only

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultyTransport : public Transport {
 public:
  FaultyTransport(std::unique_ptr<Transport> inner, FaultSchedule schedule);
  ~FaultyTransport() override;

  FaultyTransport(const FaultyTransport&) = delete;
  FaultyTransport& operator=(const FaultyTransport&) = delete;

  std::unique_ptr<Endpoint> open(NodeKey address) override;

  /// Injected faults so far, sorted by (from, to, type, seq, kind) so two
  /// runs of the same seeded workload compare equal.
  std::vector<FaultEvent> fault_log() const;
  std::size_t fault_count() const;
  bool crashed(NodeKey node) const;
  /// The crash-recover round for a currently crashed node (0 = crash-stop).
  std::uint64_t recover_round(NodeKey node) const;
  /// Flips a crash-recover node back to live and logs kCrashRecover; the
  /// triggering message (round `round`, type `type`) is then delivered.
  void revive(NodeKey node, MessageType type, std::uint64_t round);

 private:
  friend class FaultyEndpoint;

  /// Applies the schedule to one outbound message; performs the actual
  /// delivery (possibly zero, one, or two sends, possibly deferred).
  void faulty_send(const std::shared_ptr<Endpoint>& via, NodeKey from,
                   NodeKey to, MessageType type,
                   std::span<const std::uint8_t> payload,
                   const obs::TraceContext* trace);
  void record(FaultKind kind, NodeKey from, NodeKey to, MessageType type,
              std::uint64_t seq, std::uint64_t delay_ms = 0);
  void defer(const std::shared_ptr<Endpoint>& via, NodeKey to,
             MessageType type, std::span<const std::uint8_t> payload,
             const obs::TraceContext* trace, std::chrono::milliseconds delay);
  void delivery_loop();

  struct StreamState {
    util::Rng rng;
    std::uint64_t seq = 0;
  };

  struct Deferred {
    std::chrono::steady_clock::time_point due;
    std::uint64_t id = 0;  // tie-break so the queue's order is total
    std::shared_ptr<Endpoint> via;
    NodeKey to = 0;
    MessageType type = MessageType::kHeartbeat;
    std::vector<std::uint8_t> payload;
    bool has_trace = false;
    obs::TraceContext trace;
  };

  FaultSchedule schedule_;
  std::unique_ptr<Transport> inner_;

  // lock-order: fault_state; guards streams_, log_, sends_by_type_, crashed_
  mutable util::Mutex mutex_;
  std::map<std::tuple<NodeKey, NodeKey, std::uint8_t>, StreamState> streams_
      FIFL_GUARDED_BY(mutex_);
  std::vector<FaultEvent> log_ FIFL_GUARDED_BY(mutex_);
  /// Per-(node, message-type) attempted-send counts for crash triggers.
  std::map<std::pair<NodeKey, std::uint8_t>, std::uint64_t> sends_by_type_
      FIFL_GUARDED_BY(mutex_);
  std::set<NodeKey> crashed_ FIFL_GUARDED_BY(mutex_);

  // CV-paired, so std::mutex (std::unique_lock is invisible to Clang TSA);
  // checked by fifl-lint R7/R8 instead.
  // lock-order: fault_delay; guards delay_queue_, next_deferred_id_, shutdown_
  std::mutex delay_mutex_;
  std::condition_variable delay_cv_;  // lock-order: fault_delay
  std::vector<Deferred> delay_queue_;
  std::uint64_t next_deferred_id_ = 0;
  bool shutdown_ = false;
  std::thread delivery_;
};

}  // namespace fifl::net
