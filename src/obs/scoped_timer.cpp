#include "obs/scoped_timer.hpp"

#include <vector>

namespace fifl::obs {

namespace {
// Innermost-first stack of live span paths for the calling thread.
thread_local std::vector<std::string>* t_span_stack = nullptr;

std::vector<std::string>& span_stack() {
  // Leaked per thread-exit semantics simplification: thread_local vector
  // itself would be fine, but an explicit heap cell keeps the accessor
  // trivially noexcept on all ABIs.
  if (!t_span_stack) t_span_stack = new std::vector<std::string>();
  return *t_span_stack;
}
}  // namespace

Span::Span(std::string_view name, MetricsRegistry& registry)
    : registry_(&registry) {
  auto& stack = span_stack();
  path_ = stack.empty() ? std::string(name)
                        : stack.back() + "." + std::string(name);
  stack.push_back(path_);
  start_ = clock::now();  // after bookkeeping: time the body, not the setup
}

Span::~Span() {
  const double ms =
      std::chrono::duration<double, std::milli>(clock::now() - start_).count();
  registry_->histogram("span." + path_).observe(ms);
  auto& stack = span_stack();
  if (!stack.empty() && stack.back() == path_) stack.pop_back();
}

std::string Span::current_path() {
  const auto& stack = span_stack();
  return stack.empty() ? std::string() : stack.back();
}

}  // namespace fifl::obs
