#include "obs/trace.hpp"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/logging.hpp"

namespace fifl::obs {

std::string RoundTrace::to_jsonl() const {
  JsonWriter w;
  w.begin_object();
  w.key("round").value(static_cast<std::uint64_t>(round));
  w.key("degraded").value(degraded);
  w.key("fairness").value(fairness);
  if (evaluated) {
    w.key("eval").begin_object();
    w.key("loss").value(eval_loss);
    w.key("accuracy").value(eval_accuracy);
    w.end_object();
  } else {
    w.key("eval").null();
  }
  w.key("phases_ms").begin_object();
  w.key("local_train").value(phases.local_train_ms);
  w.key("channel").value(phases.channel_ms);
  w.key("detect").value(phases.detect_ms);
  w.key("aggregate").value(phases.aggregate_ms);
  w.key("ledger").value(phases.ledger_ms);
  w.end_object();
  if (has_net) {
    w.key("net").begin_object();
    w.key("bytes_tx").value(net.bytes_tx);
    w.key("bytes_rx").value(net.bytes_rx);
    w.key("msgs_tx").value(net.msgs_tx);
    w.key("msgs_rx").value(net.msgs_rx);
    w.key("frame_errors").value(net.frame_errors);
    w.key("late_uploads").value(net.late_uploads);
    w.key("send_retries").value(net.send_retries);
    w.key("dropped_workers").value(net.dropped_workers);
    if (!net.bytes_tx_by_type.empty()) {
      w.key("bytes_tx_by_type").begin_object();
      for (const auto& [name, bytes] : net.bytes_tx_by_type) {
        w.key(name).value(bytes);
      }
      w.end_object();
    }
    if (!net.bytes_rx_by_type.empty()) {
      w.key("bytes_rx_by_type").begin_object();
      for (const auto& [name, bytes] : net.bytes_rx_by_type) {
        w.key(name).value(bytes);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.key("workers").begin_array();
  for (const WorkerTrace& wt : workers) {
    w.begin_object();
    w.key("id").value(static_cast<std::uint64_t>(wt.id));
    w.key("arrived").value(wt.arrived);
    w.key("accepted").value(wt.accepted);
    w.key("uncertain").value(wt.uncertain);
    w.key("detection_score").value(wt.detection_score);
    w.key("reputation").value(wt.reputation);
    w.key("contribution").value(wt.contribution);
    w.key("reward").value(wt.reward);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

RoundTrace RoundTrace::from_jsonl(std::string_view line) {
  const JsonValue v = json_parse(line);
  RoundTrace t;
  t.round = static_cast<std::uint64_t>(v.at("round").as_number());
  t.degraded = v.at("degraded").as_bool();
  t.fairness = v.at("fairness").as_number();
  const JsonValue& eval = v.at("eval");
  if (!eval.is_null()) {
    t.evaluated = true;
    t.eval_loss = eval.at("loss").as_number();
    t.eval_accuracy = eval.at("accuracy").as_number();
  }
  const JsonValue& phases = v.at("phases_ms");
  t.phases.local_train_ms = phases.at("local_train").as_number();
  t.phases.channel_ms = phases.at("channel").as_number();
  t.phases.detect_ms = phases.at("detect").as_number();
  t.phases.aggregate_ms = phases.at("aggregate").as_number();
  t.phases.ledger_ms = phases.at("ledger").as_number();
  if (const JsonValue* net = v.find("net")) {
    t.has_net = true;
    t.net.bytes_tx = static_cast<std::uint64_t>(net->at("bytes_tx").as_number());
    t.net.bytes_rx = static_cast<std::uint64_t>(net->at("bytes_rx").as_number());
    t.net.msgs_tx = static_cast<std::uint64_t>(net->at("msgs_tx").as_number());
    t.net.msgs_rx = static_cast<std::uint64_t>(net->at("msgs_rx").as_number());
    t.net.frame_errors =
        static_cast<std::uint64_t>(net->at("frame_errors").as_number());
    // Newer degradation fields: tolerate traces from builds without them.
    if (const JsonValue* v2 = net->find("late_uploads")) {
      t.net.late_uploads = static_cast<std::uint64_t>(v2->as_number());
    }
    if (const JsonValue* v2 = net->find("send_retries")) {
      t.net.send_retries = static_cast<std::uint64_t>(v2->as_number());
    }
    if (const JsonValue* v2 = net->find("dropped_workers")) {
      t.net.dropped_workers = static_cast<std::uint64_t>(v2->as_number());
    }
    // Per-type byte maps (absent in traces from older builds).
    if (const JsonValue* v2 = net->find("bytes_tx_by_type")) {
      for (const auto& [name, val] : v2->object) {
        t.net.bytes_tx_by_type.emplace_back(
            name, static_cast<std::uint64_t>(val.as_number()));
      }
    }
    if (const JsonValue* v2 = net->find("bytes_rx_by_type")) {
      for (const auto& [name, val] : v2->object) {
        t.net.bytes_rx_by_type.emplace_back(
            name, static_cast<std::uint64_t>(val.as_number()));
      }
    }
  }
  const JsonValue& workers = v.at("workers");
  if (workers.kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("RoundTrace: 'workers' is not an array");
  }
  t.workers.reserve(workers.array.size());
  for (const JsonValue& wv : workers.array) {
    WorkerTrace wt;
    wt.id = static_cast<std::uint64_t>(wv.at("id").as_number());
    wt.arrived = wv.at("arrived").as_bool();
    wt.accepted = wv.at("accepted").as_bool();
    wt.uncertain = wv.at("uncertain").as_bool();
    wt.detection_score = wv.at("detection_score").as_number();
    wt.reputation = wv.at("reputation").as_number();
    wt.contribution = wv.at("contribution").as_number();
    wt.reward = wv.at("reward").as_number();
    t.workers.push_back(wt);
  }
  return t;
}

RoundTraceRecorder::RoundTraceRecorder(const std::string& path) {
  if (path.empty()) return;
  if (path == "-") {
    to_stdout_ = true;
    return;
  }
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("RoundTraceRecorder: cannot open " + path);
  }
  util::log_info() << "obs: streaming round traces to " << path;
}

void RoundTraceRecorder::record(const RoundTrace& trace) {
  if (!enabled_) return;
  util::MutexLock lock(mutex_);
  traces_.push_back(trace);
  if (to_stdout_) {
    std::cout << trace.to_jsonl() << '\n' << std::flush;
  } else if (out_.is_open()) {
    out_ << trace.to_jsonl() << '\n' << std::flush;
  }
}

std::size_t RoundTraceRecorder::size() const {
  util::MutexLock lock(mutex_);
  return traces_.size();
}

std::vector<RoundTrace> RoundTraceRecorder::read_jsonl_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("RoundTraceRecorder: cannot read " + path);
  }
  std::vector<RoundTrace> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out.push_back(RoundTrace::from_jsonl(line));
  }
  return out;
}

RoundTraceRecorder& RoundTraceRecorder::global() {
  static RoundTraceRecorder* instance = [] {
    const char* path = std::getenv("FIFL_TRACE_OUT");
    if (!path || !*path) return new RoundTraceRecorder(DisabledTag{});
    return new RoundTraceRecorder(std::string(path));
  }();
  return *instance;
}

}  // namespace fifl::obs
