// Flight recorder: a fixed-size lock-free ring of recent net/obs events
// per node, dumped to a postmortem JSON file when a run dies in one of
// the ways the chaos soak exercises — Byzantine divergence, below-quorum
// abort, send-retry exhaustion. The dump turns "assertion text" into a
// replayable last-K-events timeline across every involved node.
//
// Recording is wait-free: note() claims a slot with one fetch_add and
// fills it with relaxed atomic stores (the slot sequence number is
// written last, release), so writers never block each other or the
// consensus path. snapshot() is a seqlock-style reader: it accepts a
// slot only when the sequence number is unchanged across the field
// reads, so torn slots are skipped, never misreported.
//
// Gating matches the span layer: FlightRegistry is enabled iff
// FIFL_TRACE_DIR is set (postmortems land next to the per-node span
// files). ring() returns nullptr when disabled, so the producer path
// costs one pointer check. Dump filenames are derived from a process
// counter, not wall time, so artifact names are deterministic.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace fifl::obs {

enum class FlightEventKind : std::uint8_t {
  kSend = 0,
  kRecv = 1,
  kHandle = 2,
  kPhase = 3,
  kFault = 4,
  kWarn = 5,
  kDrop = 6,
  kDeadWorker = 7,
  kDegradedRound = 8,
  kDivergence = 9,
  kQuorumAbort = 10,
  kRetryExhausted = 11,
  kLedgerFork = 12,
  kViewChange = 13,
  kServerRejoin = 14,
};

const char* flight_event_kind_name(FlightEventKind kind);

struct FlightEvent {
  std::uint64_t seq = 0;    // global order within this ring (1-based)
  std::uint64_t ts_us = 0;  // monotonic microseconds, node-local epoch
  std::uint64_t round = 0;
  FlightEventKind kind = FlightEventKind::kWarn;
  std::uint32_t peer = 0;     // remote node, or kNoFlightPeer
  std::uint8_t msg_type = 0;  // raw MessageType tag, 0 when n/a
  std::uint64_t detail = 0;   // kind-specific (bytes, attempt count, ...)
};

inline constexpr std::uint32_t kNoFlightPeer = 0xFFFFFFFFu;

class FlightRing {
 public:
  /// Power of two; the postmortem carries at most this many events per
  /// node (the "last K").
  static constexpr std::size_t kCapacity = 256;

  void note(FlightEventKind kind, std::uint32_t peer, std::uint8_t msg_type,
            std::uint64_t round, std::uint64_t detail);

  /// Consistent slots in oldest-to-newest order. Safe to call while
  /// writers are active; in-flight slots are skipped.
  std::vector<FlightEvent> snapshot() const;

  std::uint64_t total_noted() const {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 = never written
    std::atomic<std::uint64_t> ts_us{0};
    std::atomic<std::uint64_t> round{0};
    std::atomic<std::uint64_t> detail{0};
    std::atomic<std::uint32_t> peer{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::uint8_t> msg_type{0};
  };

  std::atomic<std::uint64_t> head_{0};
  std::array<Slot, kCapacity> slots_;
};

/// Process-global registry of per-node flight rings + the postmortem
/// dumper. Enabled iff FIFL_TRACE_DIR is set (or configure() is called).
class FlightRegistry {
 public:
  static FlightRegistry& global();

  bool enabled() const;
  /// Point postmortems at `dir` ("" disables). Drops existing rings;
  /// test setup only.
  void configure(const std::string& dir);

  /// The ring for one node, created on first use; nullptr when disabled.
  /// Valid until the next configure().
  FlightRing* ring(std::uint32_t node);

  /// Write <dir>/postmortem_<seq>_<reason>.json with the last-K events
  /// of every node ring. Returns the path, or "" when disabled or the
  /// per-process dump cap (kMaxDumps) is reached.
  std::string dump(const std::string& reason);

  std::size_t dump_count() const;

  static constexpr std::size_t kMaxDumps = 8;

 private:
  FlightRegistry();

  // lock-order: flight_registry; guards dir_, rings_, dumps_
  mutable util::Mutex mutex_;
  std::string dir_ FIFL_GUARDED_BY(mutex_);
  std::map<std::uint32_t, std::unique_ptr<FlightRing>> rings_
      FIFL_GUARDED_BY(mutex_);
  std::size_t dumps_ FIFL_GUARDED_BY(mutex_) = 0;
};

}  // namespace fifl::obs
