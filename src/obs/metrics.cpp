#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/json.hpp"

namespace fifl::obs {

namespace {

void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: empty bucket bounds");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly increasing");
  }
  bucket_counts_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t b = 0; b <= bounds_.size(); ++b) {
    bucket_counts_[b].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) noexcept {
  if (std::isnan(v)) return;
  // First bound >= v; v above every bound lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  bucket_counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (std::size_t b = 0; b <= bounds_.size(); ++b) {
    snap.counts[b] = bucket_counts_[b].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  // min/max hold ±inf sentinels until the first observation; zero them
  // only for empty histograms so an observed infinity reads back as-is.
  snap.min = snap.count ? min_.load(std::memory_order_relaxed) : 0.0;
  snap.max = snap.count ? max_.load(std::memory_order_relaxed) : 0.0;
  return snap;
}

void Histogram::reset() noexcept {
  for (std::size_t b = 0; b <= bounds_.size(); ++b) {
    bucket_counts_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::uint64_t prev = cum;
    cum += counts[b];
    if (static_cast<double>(cum) < rank) continue;
    // Interpolate linearly inside bucket b; edge buckets borrow the
    // observed min/max so the estimate never leaves the data range.
    const double lo = b == 0 ? min : bounds[b - 1];
    const double hi = b < bounds.size() ? bounds[b] : max;
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(counts[b]);
    return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min, max);
  }
  return max;
}

std::vector<double> Histogram::default_latency_bounds_ms() {
  return {0.001, 0.005, 0.01, 0.05, 0.1,  0.5,   1.0,    5.0,
          10.0,  50.0,  100.0, 500.0, 1000.0, 5000.0, 60000.0};
}

// --- MetricsSnapshot ------------------------------------------------------

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) w.key(name).value(value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) w.key(name).value(value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("min").value(h.min);
    w.key("max").value(h.max);
    w.key("mean").value(h.mean());
    w.key("p50").value(h.quantile(0.50));
    w.key("p90").value(h.quantile(0.90));
    w.key("p99").value(h.quantile(0.99));
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      w.begin_object();
      if (b < h.bounds.size()) {
        w.key("le").value(h.bounds[b]);
      } else {
        w.key("le").null();  // overflow bucket
      }
      w.key("count").value(h.counts[b]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

std::string MetricsSnapshot::to_csv() const {
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, value] : counters) {
    out += "counter," + name + ",value," + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += "gauge," + name + ",value," + json_number(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += "histogram," + name + ",count," + std::to_string(h.count) + "\n";
    out += "histogram," + name + ",sum," + json_number(h.sum) + "\n";
    out += "histogram," + name + ",min," + json_number(h.min) + "\n";
    out += "histogram," + name + ",max," + json_number(h.max) + "\n";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      const std::string le =
          b < h.bounds.size() ? json_number(h.bounds[b]) : "inf";
      out += "histogram," + name + ",le_" + le + "," +
             std::to_string(h.counts[b]) + "\n";
    }
  }
  return out;
}

// --- MetricsRegistry ------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  util::MutexLock lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  util::MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  std::vector<double> b = bounds.empty()
                              ? Histogram::default_latency_bounds_ms()
                              : std::vector<double>(bounds.begin(), bounds.end());
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<Histogram>(std::move(b)))
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  util::MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

void MetricsRegistry::reset() {
  util::MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instrumented code may run during static
  // destruction; handles must outlive every user.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace fifl::obs
