#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "obs/json.hpp"

namespace fifl::obs {

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSend: return "send";
    case FlightEventKind::kRecv: return "recv";
    case FlightEventKind::kHandle: return "handle";
    case FlightEventKind::kPhase: return "phase";
    case FlightEventKind::kFault: return "fault";
    case FlightEventKind::kWarn: return "warn";
    case FlightEventKind::kDrop: return "drop";
    case FlightEventKind::kDeadWorker: return "dead_worker";
    case FlightEventKind::kDegradedRound: return "degraded_round";
    case FlightEventKind::kDivergence: return "divergence";
    case FlightEventKind::kQuorumAbort: return "quorum_abort";
    case FlightEventKind::kRetryExhausted: return "retry_exhausted";
    case FlightEventKind::kLedgerFork: return "ledger_fork";
    case FlightEventKind::kViewChange: return "view_change";
    case FlightEventKind::kServerRejoin: return "server_rejoin";
  }
  return "unknown";
}

namespace {

std::uint64_t flight_now_us() {
  // Timestamps only ever reach postmortem artifacts, never deterministic
  // output (obs layer, R2-allowlisted).
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void FlightRing::note(FlightEventKind kind, std::uint32_t peer,
                      std::uint8_t msg_type, std::uint64_t round,
                      std::uint64_t detail) {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(seq - 1) & (kCapacity - 1)];
  // Invalidate the slot first so a concurrent snapshot never pairs the
  // old payload with the new sequence number, then publish seq last.
  slot.seq.store(0, std::memory_order_release);
  slot.ts_us.store(flight_now_us(), std::memory_order_relaxed);
  slot.round.store(round, std::memory_order_relaxed);
  slot.detail.store(detail, std::memory_order_relaxed);
  slot.peer.store(peer, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.msg_type.store(msg_type, std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_release);
}

std::vector<FlightEvent> FlightRing::snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(kCapacity);
  for (const Slot& slot : slots_) {
    const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before == 0) continue;  // empty or mid-write
    FlightEvent ev;
    ev.seq = seq_before;
    ev.ts_us = slot.ts_us.load(std::memory_order_relaxed);
    ev.round = slot.round.load(std::memory_order_relaxed);
    ev.detail = slot.detail.load(std::memory_order_relaxed);
    ev.peer = slot.peer.load(std::memory_order_relaxed);
    ev.kind =
        static_cast<FlightEventKind>(slot.kind.load(std::memory_order_relaxed));
    ev.msg_type = slot.msg_type.load(std::memory_order_relaxed);
    if (slot.seq.load(std::memory_order_acquire) != seq_before) continue;
    out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

FlightRegistry::FlightRegistry() {
  const char* dir = std::getenv("FIFL_TRACE_DIR");
  if (dir != nullptr && dir[0] != '\0') configure(dir);
}

FlightRegistry& FlightRegistry::global() {
  // Leaked like MetricsRegistry::global(): rings may be poked from
  // detached threads during process teardown.
  static FlightRegistry* instance = new FlightRegistry();
  return *instance;
}

bool FlightRegistry::enabled() const {
  const util::MutexLock lock(mutex_);
  return !dir_.empty();
}

void FlightRegistry::configure(const std::string& dir) {
  const util::MutexLock lock(mutex_);
  dir_ = dir;
  rings_.clear();
  dumps_ = 0;
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
}

FlightRing* FlightRegistry::ring(std::uint32_t node) {
  const util::MutexLock lock(mutex_);
  if (dir_.empty()) return nullptr;
  auto it = rings_.find(node);
  if (it == rings_.end()) {
    it = rings_.emplace(node, std::make_unique<FlightRing>()).first;
  }
  return it->second.get();
}

std::string FlightRegistry::dump(const std::string& reason) {
  const util::MutexLock lock(mutex_);
  if (dir_.empty() || dumps_ >= kMaxDumps) return "";
  ++dumps_;

  JsonWriter w;
  w.begin_object();
  w.key("postmortem").value(reason);
  w.key("dump_seq").value(static_cast<std::uint64_t>(dumps_));
  w.key("ring_capacity").value(static_cast<std::uint64_t>(FlightRing::kCapacity));
  w.key("nodes").begin_array();
  for (const auto& [node, ring] : rings_) {
    w.begin_object();
    w.key("node").value(static_cast<std::uint64_t>(node));
    w.key("total_noted").value(ring->total_noted());
    w.key("events").begin_array();
    for (const FlightEvent& ev : ring->snapshot()) {
      w.begin_object();
      w.key("seq").value(ev.seq);
      w.key("ts_us").value(ev.ts_us);
      w.key("round").value(ev.round);
      w.key("kind").value(flight_event_kind_name(ev.kind));
      if (ev.peer != kNoFlightPeer) {
        w.key("peer").value(static_cast<std::uint64_t>(ev.peer));
      }
      if (ev.msg_type != 0) {
        w.key("msg_type").value(static_cast<std::uint64_t>(ev.msg_type));
      }
      w.key("detail").value(ev.detail);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string path = dir_ + "/postmortem_" + std::to_string(dumps_) +
                           "_" + reason + ".json";
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) return "";
  out << w.str() << '\n';
  return path;
}

std::size_t FlightRegistry::dump_count() const {
  const util::MutexLock lock(mutex_);
  return dumps_;
}

}  // namespace fifl::obs
