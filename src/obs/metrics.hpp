// fifl::obs metrics — process-wide counters, gauges, and fixed-bucket
// histograms with lock-free hot paths.
//
// Design: registration (name -> instrument) takes a mutex once; the
// returned reference stays valid for the registry's lifetime, so hot
// paths hold a pointer and touch only relaxed atomics — a counter
// increment is a single fetch_add. Snapshots read the atomics without
// stopping writers: totals are exact for quiesced instruments and
// monotonically consistent under concurrent writes (a histogram's
// bucket counts may momentarily lag its observation count).
//
// Naming convention: dot-separated lowercase paths, unit suffix on
// histograms ("sim.local_train_ms", "chain.seal_ms").
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace fifl::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with `le` (less-or-equal) bucket semantics:
/// bucket b counts observations v with bounds[b-1] < v <= bounds[b]; one
/// implicit overflow bucket counts v > bounds.back(). NaN observations
/// are dropped. Tracks count/sum/min/max alongside the buckets.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  struct Snapshot {
    std::vector<double> bounds;         // upper bounds; overflow implicit
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // meaningful iff count > 0
    double max = 0.0;
    double mean() const noexcept {
      return count ? sum / static_cast<double>(count) : 0.0;
    }
    /// Deterministic bucket-interpolated quantile (q in [0,1]): walks the
    /// fixed buckets and interpolates linearly inside the target bucket,
    /// clamped to [min, max]. 0 for an empty histogram. Identical inputs
    /// give identical outputs — safe to export into BENCH_*.json.
    double quantile(double q) const noexcept;
  };
  Snapshot snapshot() const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  void reset() noexcept;

  /// Default bounds for millisecond latencies: 1µs .. 60s, log-ish scale.
  static std::vector<double> default_latency_bounds_ms();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> bucket_counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

  /// Compact JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,min,max,mean,buckets:[{le,count}..]}}}.
  std::string to_json() const;
  /// Flat CSV: kind,name,field,value — one row per scalar.
  std::string to_csv() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. References remain valid for the registry's
  /// lifetime. For histograms, `bounds` applies only on first creation
  /// (empty => default_latency_bounds_ms()).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = {});

  MetricsSnapshot snapshot() const;
  /// Zeroes every instrument (registrations survive). Not linearizable
  /// against concurrent writers — intended for bench/test boundaries.
  void reset();

  /// Process-wide registry the built-in instrumentation reports to.
  static MetricsRegistry& global();

 private:
  // The maps are guarded, not the instruments they own: returned
  // references are written lock-free through their atomics.
  // lock-order: metrics_registry; guards counters_, gauges_, histograms_
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      FIFL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      FIFL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      FIFL_GUARDED_BY(mutex_);
};

}  // namespace fifl::obs
