// Minimal JSON support for the observability layer: a streaming writer
// (used for metrics snapshots, round traces, and BENCH_*.json files) and
// a small recursive-descent parser (used by the trace round-trip path and
// tests). Deliberately tiny — no external dependency, no DOM mutation
// API; the writer emits compact single-line JSON suitable for JSONL.
//
// Non-finite doubles serialize as `null` (JSON has no NaN/Inf); the
// parser maps `null` back to NaN when read through as_number().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fifl::obs {

/// Quote + escape a string for JSON output (control chars become \u00XX).
std::string json_quote(std::string_view s);

/// Shortest decimal form that round-trips the double; "null" if non-finite.
std::string json_number(double v);

/// Streaming writer producing compact JSON. Call sequence is validated
/// only loosely (it is an internal tool); misuse yields malformed output,
/// not UB. Nested values: begin_object()/begin_array() after key() or as
/// array elements.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(double v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& null();
  /// Splice a pre-serialized JSON fragment in value position.
  JsonWriter& raw(std::string_view json);

  const std::string& str() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void element();  // comma bookkeeping before a new element/key

  std::string out_;
  std::vector<char> first_;  // stack: 1 = next element is the first
  bool after_key_ = false;
};

/// Parsed JSON value. Objects preserve insertion order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const noexcept { return kind == Kind::kNull; }
  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Object member access; throws std::runtime_error when absent.
  const JsonValue& at(std::string_view key) const;
  /// Number coercion: kNumber => value, kNull => NaN, else throws.
  double as_number() const;
  bool as_bool() const;
  const std::string& as_string() const;
};

/// Parses one JSON document (throws std::runtime_error on malformed
/// input or trailing garbage). Depth-limited against adversarial input.
JsonValue json_parse(std::string_view text);

/// FNV-1a 64-bit checksum — stable fingerprint for exported series.
constexpr std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// fnv1a64 rendered as a fixed-width hex string ("0x" + 16 digits).
std::string fnv1a64_hex(std::string_view data);

}  // namespace fifl::obs
