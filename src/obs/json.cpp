#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace fifl::obs {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Shortest representation that parses back to the same double.
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonWriter::element() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = 0;
    } else {
      out_.push_back(',');
    }
  }
}

JsonWriter& JsonWriter::begin_object() {
  element();
  out_.push_back('{');
  first_.push_back(1);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_.push_back('}');
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element();
  out_.push_back('[');
  first_.push_back(1);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_.push_back(']');
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  element();
  out_ += json_quote(k);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  element();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  element();
  out_ += json_quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  element();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  element();
  out_ += json;
  return *this;
}

// --- JsonValue ------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view k) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == k) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view k) const {
  const JsonValue* v = find(k);
  if (!v) throw std::runtime_error("json: missing key '" + std::string(k) + "'");
  return *v;
}

double JsonValue::as_number() const {
  if (kind == Kind::kNumber) return number;
  if (kind == Kind::kNull) return std::nan("");
  throw std::runtime_error("json: value is not a number");
}

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) throw std::runtime_error("json: value is not a bool");
  return boolean;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) {
    throw std::runtime_error("json: value is not a string");
  }
  return string;
}

// --- parser ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.kind = JsonValue::Kind::kNull;
        return v;
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // The writer only emits \u00XX for control bytes; decode the
          // BMP code point as UTF-8 for general inputs.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) { return Parser(text).parse(); }

std::string fnv1a64_hex(std::string_view data) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(fnv1a64(data)));
  return buf;
}

}  // namespace fifl::obs
