// Distributed-tracing primitives: a compact trace context carried on
// every wire message, per-node span records (send / recv / handle /
// round-phase) streamed as JSONL, and the process-global trace sink
// keyed off FIFL_TRACE_DIR.
//
// Wiring: fifl::net nodes cache a SpanBuffer* at startup (nullptr when
// FIFL_TRACE_DIR is unset), so the disabled path costs exactly one
// pointer check per site — no allocation, no clock read. Span ids are
// allocated from node-scoped counters, never from the seeded RNG, so
// tracing on or off cannot perturb any deterministic stream
// (DESIGN.md "Determinism invariants").
//
// JSONL schema (one object per line, per-node file node_<n>.trace.jsonl):
//   {"t":"span","trace":1,"span":1099511627777,"parent":0,"node":8,
//    "peer":3,"kind":"send","name":"model_broadcast","round":0,
//    "ts_us":123456,"dur_us":17}
//   {"t":"clock","node":3,"skew_us":-42,"rtt_us":120}
// Ids stay below 2^53 by construction so they survive a double-typed
// JSON parser. The "clock" record carries the Join-handshake skew
// estimate fifl-tracecat uses to align node timelines.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace fifl::obs {

/// Trace context propagated on the wire (frame extension, 24 bytes).
/// trace_id 0 means "no context" — the frame travels without the
/// extension and recv sides start a fresh local span.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  bool valid() const noexcept { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

enum class SpanKind : std::uint8_t {
  kSend = 0,
  kRecv = 1,
  kHandle = 2,
  kPhase = 3,
};

const char* span_kind_name(SpanKind kind);

/// Sentinel for spans with no remote peer (round-phase spans).
inline constexpr std::uint32_t kNoPeer = 0xFFFFFFFFu;

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint32_t node = 0;
  std::uint32_t peer = kNoPeer;
  SpanKind kind = SpanKind::kPhase;
  std::string name;        // message-type or phase name
  std::uint64_t round = 0; // logical round clock
  std::uint64_t ts_us = 0; // monotonic microseconds, node-local epoch
  std::uint64_t dur_us = 0;

  /// One JSONL line (no trailing newline).
  std::string to_jsonl() const;
  /// Inverse of to_jsonl(); throws std::runtime_error on malformed input.
  static SpanRecord from_jsonl(std::string_view line);
};

/// Clock-skew estimate from the Join handshake: add skew_us to this
/// node's ts_us values to land on the lead's timeline.
struct ClockSyncRecord {
  std::uint32_t node = 0;
  std::int64_t skew_us = 0;
  std::int64_t rtt_us = 0;

  std::string to_jsonl() const;
  static ClockSyncRecord from_jsonl(std::string_view line);
};

/// Thread-safe per-node span sink. With a path, every record streams to
/// the JSONL file (flushed per record so a crashed node keeps its
/// trace); memory-only otherwise (tests, benches).
class SpanBuffer {
 public:
  SpanBuffer() = default;
  /// Throws std::runtime_error when the path cannot be opened.
  explicit SpanBuffer(const std::string& path);

  void record(const SpanRecord& record);
  void record_clock(const ClockSyncRecord& record);

  std::size_t size() const;
  /// In-memory records in append order; clears the buffer.
  std::vector<SpanRecord> drain();
  std::vector<ClockSyncRecord> drain_clocks();

 private:
  // `out_` is left off the lint `guards` list: the constructor opens it
  // before the buffer is shared, which R8's lexical tracking cannot tell
  // apart from a race; the TSA attribute still carries the contract.
  // lock-order: span_buffer; guards records_, clocks_
  mutable util::Mutex mutex_;
  std::vector<SpanRecord> records_ FIFL_GUARDED_BY(mutex_);
  std::vector<ClockSyncRecord> clocks_ FIFL_GUARDED_BY(mutex_);
  std::ofstream out_ FIFL_GUARDED_BY(mutex_);  // open iff path-constructed
};

/// Process-global trace directory, configured from FIFL_TRACE_DIR.
/// Disabled (node_buffer() == nullptr) when the variable is unset, so
/// producers pay one branch and nothing else.
class TraceDir {
 public:
  static TraceDir& global();

  bool enabled() const;
  /// Point the sink at `dir` ("" disables). Creates the directory.
  /// Existing node buffers are dropped; intended for test setup, not
  /// mid-run reconfiguration.
  void configure(const std::string& dir);
  std::string dir() const;

  /// The span sink for one node, created on first use as
  /// <dir>/node_<n>.trace.jsonl. nullptr when disabled. The pointer
  /// stays valid until the next configure().
  SpanBuffer* node_buffer(std::uint32_t node);

 private:
  TraceDir();

  // lock-order: trace_dir; guards dir_, buffers_
  mutable util::Mutex dir_mutex_;
  std::string dir_ FIFL_GUARDED_BY(dir_mutex_);
  std::map<std::uint32_t, std::unique_ptr<SpanBuffer>> buffers_
      FIFL_GUARDED_BY(dir_mutex_);
};

/// Parses a per-node trace file back into spans + clock records
/// (fifl-tracecat's reader; also the test round-trip path).
struct NodeTraceFile {
  std::vector<SpanRecord> spans;
  std::vector<ClockSyncRecord> clocks;
};
NodeTraceFile read_trace_file(const std::string& path);

}  // namespace fifl::obs
