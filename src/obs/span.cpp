#include "obs/span.hpp"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "obs/json.hpp"

namespace fifl::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSend: return "send";
    case SpanKind::kRecv: return "recv";
    case SpanKind::kHandle: return "handle";
    case SpanKind::kPhase: return "phase";
  }
  return "unknown";
}

namespace {

SpanKind span_kind_from_name(const std::string& name) {
  if (name == "send") return SpanKind::kSend;
  if (name == "recv") return SpanKind::kRecv;
  if (name == "handle") return SpanKind::kHandle;
  if (name == "phase") return SpanKind::kPhase;
  throw std::runtime_error("span record: unknown kind '" + name + "'");
}

std::uint64_t as_u64(const JsonValue& v) {
  const double d = v.as_number();
  if (!(d >= 0.0)) throw std::runtime_error("span record: negative id/field");
  return static_cast<std::uint64_t>(d);
}

}  // namespace

std::string SpanRecord::to_jsonl() const {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("span");
  w.key("trace").value(trace_id);
  w.key("span").value(span_id);
  w.key("parent").value(parent_span_id);
  w.key("node").value(static_cast<std::uint64_t>(node));
  if (peer != kNoPeer) w.key("peer").value(static_cast<std::uint64_t>(peer));
  w.key("kind").value(span_kind_name(kind));
  w.key("name").value(name);
  w.key("round").value(round);
  w.key("ts_us").value(ts_us);
  w.key("dur_us").value(dur_us);
  w.end_object();
  return w.take();
}

SpanRecord SpanRecord::from_jsonl(std::string_view line) {
  const JsonValue v = json_parse(line);
  if (const JsonValue* t = v.find("t"); !t || t->as_string() != "span") {
    throw std::runtime_error("span record: missing \"t\":\"span\"");
  }
  SpanRecord r;
  r.trace_id = as_u64(v.at("trace"));
  r.span_id = as_u64(v.at("span"));
  r.parent_span_id = as_u64(v.at("parent"));
  r.node = static_cast<std::uint32_t>(as_u64(v.at("node")));
  if (const JsonValue* peer = v.find("peer")) {
    r.peer = static_cast<std::uint32_t>(as_u64(*peer));
  }
  r.kind = span_kind_from_name(v.at("kind").as_string());
  r.name = v.at("name").as_string();
  r.round = as_u64(v.at("round"));
  r.ts_us = as_u64(v.at("ts_us"));
  r.dur_us = as_u64(v.at("dur_us"));
  return r;
}

std::string ClockSyncRecord::to_jsonl() const {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("clock");
  w.key("node").value(static_cast<std::uint64_t>(node));
  w.key("skew_us").value(static_cast<std::int64_t>(skew_us));
  w.key("rtt_us").value(static_cast<std::int64_t>(rtt_us));
  w.end_object();
  return w.take();
}

ClockSyncRecord ClockSyncRecord::from_jsonl(std::string_view line) {
  const JsonValue v = json_parse(line);
  if (const JsonValue* t = v.find("t"); !t || t->as_string() != "clock") {
    throw std::runtime_error("clock record: missing \"t\":\"clock\"");
  }
  ClockSyncRecord r;
  r.node = static_cast<std::uint32_t>(as_u64(v.at("node")));
  r.skew_us = static_cast<std::int64_t>(v.at("skew_us").as_number());
  r.rtt_us = static_cast<std::int64_t>(v.at("rtt_us").as_number());
  return r;
}

SpanBuffer::SpanBuffer(const std::string& path) {
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("SpanBuffer: cannot open trace file: " + path);
  }
}

void SpanBuffer::record(const SpanRecord& record) {
  const util::MutexLock lock(mutex_);
  records_.push_back(record);
  if (out_.is_open()) {
    out_ << record.to_jsonl() << '\n';
    out_.flush();
  }
}

void SpanBuffer::record_clock(const ClockSyncRecord& record) {
  const util::MutexLock lock(mutex_);
  clocks_.push_back(record);
  if (out_.is_open()) {
    out_ << record.to_jsonl() << '\n';
    out_.flush();
  }
}

std::size_t SpanBuffer::size() const {
  const util::MutexLock lock(mutex_);
  return records_.size();
}

std::vector<SpanRecord> SpanBuffer::drain() {
  const util::MutexLock lock(mutex_);
  std::vector<SpanRecord> out = std::move(records_);
  records_.clear();
  return out;
}

std::vector<ClockSyncRecord> SpanBuffer::drain_clocks() {
  const util::MutexLock lock(mutex_);
  std::vector<ClockSyncRecord> out = std::move(clocks_);
  clocks_.clear();
  return out;
}

TraceDir::TraceDir() {
  const char* dir = std::getenv("FIFL_TRACE_DIR");
  if (dir != nullptr && dir[0] != '\0') configure(dir);
}

TraceDir& TraceDir::global() {
  // Leaked like MetricsRegistry::global(): nodes may record spans from
  // detached threads during process teardown.
  static TraceDir* instance = new TraceDir();
  return *instance;
}

bool TraceDir::enabled() const {
  const util::MutexLock lock(dir_mutex_);
  return !dir_.empty();
}

std::string TraceDir::dir() const {
  const util::MutexLock lock(dir_mutex_);
  return dir_;
}

void TraceDir::configure(const std::string& dir) {
  const util::MutexLock lock(dir_mutex_);
  dir_ = dir;
  buffers_.clear();
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
}

SpanBuffer* TraceDir::node_buffer(std::uint32_t node) {
  const util::MutexLock lock(dir_mutex_);
  if (dir_.empty()) return nullptr;
  auto it = buffers_.find(node);
  if (it == buffers_.end()) {
    const std::string path =
        dir_ + "/node_" + std::to_string(node) + ".trace.jsonl";
    it = buffers_.emplace(node, std::make_unique<SpanBuffer>(path)).first;
  }
  return it->second.get();
}

NodeTraceFile read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_trace_file: cannot open: " + path);
  }
  NodeTraceFile out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue v = json_parse(line);
    const std::string& tag = v.at("t").as_string();
    if (tag == "span") {
      out.spans.push_back(SpanRecord::from_jsonl(line));
    } else if (tag == "clock") {
      out.clocks.push_back(ClockSyncRecord::from_jsonl(line));
    } else {
      throw std::runtime_error("read_trace_file: unknown record type '" +
                               tag + "'");
    }
  }
  return out;
}

}  // namespace fifl::obs
