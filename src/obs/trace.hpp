// Round-trace telemetry: one structured record per federated round,
// streamed as JSONL. This is the single source of truth the figure
// benches read (reputation / contribution / reward series) instead of
// hand-collecting vectors, and what an operator tails to watch a live
// training run.
//
// Wiring: core::FederatedTrainer assembles a RoundTrace each round from
// the simulator's phase timings and the engine's RoundReport and hands
// it to a RoundTraceRecorder. The process-global recorder is enabled by
// setting FIFL_TRACE_OUT=<path> ("-" for stdout); when the variable is
// unset the global recorder is disabled and the producer side skips all
// work (one branch per round — tracing is compiled in but free).
//
// JSONL schema (one object per line; numbers are JSON numbers, NaN
// serializes as null):
//   {"round":0,"degraded":false,"fairness":0.98,
//    "eval":{"loss":1.2,"accuracy":0.41} | null,
//    "phases_ms":{"local_train":12.3,"channel":0.1,"detect":0.9,
//                 "aggregate":0.4,"ledger":0.7},
//    "workers":[{"id":0,"arrived":true,"accepted":true,"uncertain":false,
//                "detection_score":0.93,"reputation":0.5,
//                "contribution":0.1,"reward":0.05}, ...]}
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace fifl::obs {

struct WorkerTrace {
  std::uint64_t id = 0;
  bool arrived = true;
  bool accepted = false;
  bool uncertain = false;
  double detection_score = 0.0;  // NaN when absent/degraded => null in JSON
  double reputation = 0.0;
  double contribution = 0.0;
  double reward = 0.0;
};

struct RoundTrace {
  std::uint64_t round = 0;
  bool degraded = false;
  double fairness = 0.0;
  bool evaluated = false;
  double eval_loss = 0.0;      // valid iff evaluated
  double eval_accuracy = 0.0;  // valid iff evaluated
  struct Phases {
    double local_train_ms = 0.0;
    double channel_ms = 0.0;
    double detect_ms = 0.0;
    double aggregate_ms = 0.0;
    double ledger_ms = 0.0;
  } phases;
  std::vector<WorkerTrace> workers;
  /// Per-round transport activity, filled only by networked (fifl::net)
  /// runs: counter deltas over the round plus the rtt observations so
  /// far. Serialized as a "net" object when has_net is set; in-process
  /// traces keep the seed schema unchanged (no "net" key).
  struct NetStats {
    std::uint64_t bytes_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t msgs_tx = 0;
    std::uint64_t msgs_rx = 0;
    std::uint64_t frame_errors = 0;
    // Degradation deltas (absent in traces from older builds; decode
    // treats them as 0).
    std::uint64_t late_uploads = 0;
    std::uint64_t send_retries = 0;
    std::uint64_t dropped_workers = 0;
    // Per-message-type byte deltas (counter name suffix -> bytes, e.g.
    // "gradient_upload" -> 12345), nonzero entries only, in wire-tag
    // order. Serialized as nested "bytes_tx_by_type"/"bytes_rx_by_type"
    // objects; absent in traces from older builds (decode -> empty).
    std::vector<std::pair<std::string, std::uint64_t>> bytes_tx_by_type;
    std::vector<std::pair<std::string, std::uint64_t>> bytes_rx_by_type;
  } net;
  bool has_net = false;

  /// One JSONL line (no trailing newline).
  std::string to_jsonl() const;
  /// Inverse of to_jsonl(); throws std::runtime_error on malformed input.
  static RoundTrace from_jsonl(std::string_view line);
};

class RoundTraceRecorder {
 public:
  /// Memory-only recorder (enabled, no sink) — what benches use to derive
  /// series without touching the filesystem.
  RoundTraceRecorder() = default;
  /// Streams each record to `path` as JSONL (and keeps it in memory).
  /// "" = memory-only; "-" = stdout. Throws on unwritable paths.
  explicit RoundTraceRecorder(const std::string& path);

  /// Producers must check this before building a RoundTrace so a disabled
  /// recorder costs one branch per round.
  bool enabled() const noexcept { return enabled_; }

  /// Thread-safe append; flushes the sink per record so a crashed run
  /// keeps its trace. No-op when disabled.
  void record(const RoundTrace& trace);

  std::size_t size() const;
  /// In-memory traces, in record order. Not synchronized with concurrent
  /// record() calls — read after the run.
  const std::vector<RoundTrace>& traces() const noexcept
      FIFL_NO_THREAD_SAFETY_ANALYSIS {
    // fifl-lint: allow(guarded-by) -- documented read-after-run accessor: callers read the traces once producers have stopped
    return traces_;
  }

  /// Parses a JSONL trace file back into records (round-trip path).
  static std::vector<RoundTrace> read_jsonl_file(const std::string& path);

  /// Process-global recorder configured from FIFL_TRACE_OUT; disabled
  /// (enabled() == false) when the variable is unset or empty.
  static RoundTraceRecorder& global();

 private:
  struct DisabledTag {};
  explicit RoundTraceRecorder(DisabledTag) : enabled_(false) {}

  bool enabled_ = true;       // set in the ctor, immutable afterwards
  bool to_stdout_ = false;    // likewise
  // `out_` stays off the lint `guards` list (opened in the ctor before
  // the recorder is shared); see SpanBuffer for the same pattern.
  // lock-order: round_trace; guards traces_
  mutable util::Mutex mutex_;
  std::vector<RoundTrace> traces_ FIFL_GUARDED_BY(mutex_);
  std::ofstream out_ FIFL_GUARDED_BY(mutex_);  // open iff path-constructed
};

}  // namespace fifl::obs
