// RAII wall-clock timing that feeds obs::Histogram. Two flavours:
//
//   ScopedTimer — times a scope into a histogram handle you already hold
//   (the hot-path form: zero lookups, one steady_clock read at each end).
//
//   Span — named, nestable timing against a registry. Spans opened while
//   another Span is live on the same thread record under the joined path
//   ("round.detect" inside "round"), so one histogram per call-site
//   emerges without manual plumbing. Path tracking is thread-local; spans
//   on different threads do not nest into each other.
//
// Both record milliseconds, matching the *_ms histogram convention.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace fifl::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink) noexcept
      : sink_(&sink), start_(clock::now()) {}
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double elapsed_ms() const noexcept {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }

  /// Records the elapsed time now and detaches (idempotent). Returns the
  /// recorded duration in ms — callers that also want the value (e.g. to
  /// store in a RoundReport) use this instead of timing twice.
  double stop() noexcept {
    const double ms = elapsed_ms();
    if (sink_) {
      sink_->observe(ms);
      sink_ = nullptr;
    }
    return ms;
  }

 private:
  using clock = std::chrono::steady_clock;
  Histogram* sink_;
  clock::time_point start_;
};

class Span {
 public:
  /// Opens a span named `name`; records into the histogram
  /// "span.<outer>.<...>.<name>" of `registry` when destroyed.
  explicit Span(std::string_view name,
                MetricsRegistry& registry = MetricsRegistry::global());
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  const std::string& path() const noexcept { return path_; }
  /// Dotted path of the innermost live span on this thread ("" if none).
  static std::string current_path();

 private:
  using clock = std::chrono::steady_clock;
  MetricsRegistry* registry_;
  std::string path_;  // full dotted path including this span's name
  clock::time_point start_;
};

}  // namespace fifl::obs
