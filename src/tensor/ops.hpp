// Elementwise / BLAS-lite operations on Tensor.
//
// Everything that dominates the training profile (matmul, im2col in
// conv.hpp) is parallelised with util::parallel_for; small vector ops stay
// serial because dispatch overhead would dwarf the work.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace fifl::tensor {

// ---- elementwise (shapes must match; throws std::invalid_argument) ----
void add_inplace(Tensor& dst, const Tensor& src);            // dst += src
void sub_inplace(Tensor& dst, const Tensor& src);            // dst -= src
void mul_inplace(Tensor& dst, const Tensor& src);            // dst *= src (Hadamard)
void scale_inplace(Tensor& dst, float alpha);                // dst *= alpha
void axpy_inplace(Tensor& dst, float alpha, const Tensor& x);  // dst += alpha*x

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);

// ---- reductions ----
double sum(const Tensor& t) noexcept;
double dot(std::span<const float> a, std::span<const float> b);
double dot(const Tensor& a, const Tensor& b);
double squared_norm(const Tensor& t) noexcept;
double norm(const Tensor& t) noexcept;
/// Squared Euclidean distance ‖a-b‖² — the paper's Dis() (Eq. 13).
double squared_distance(std::span<const float> a, std::span<const float> b);
/// Cosine similarity in [-1, 1]; 0 when either vector is zero.
double cosine_similarity(std::span<const float> a, std::span<const float> b);
/// Index of the maximum element (first on ties).
std::size_t argmax(std::span<const float> xs);

// ---- matrix ops (rank-2 tensors) ----
/// c = a(mxk) * b(kxn); parallel over rows of a.
Tensor matmul(const Tensor& a, const Tensor& b);
/// c = a(mxk) * b(nxk)^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// c = a(kxm)^T * b(kxn).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
Tensor transpose(const Tensor& a);

/// True iff any entry is NaN or infinite — used to detect the paper's
/// "loss becomes NaN" model crash under strong sign-flipping attacks.
bool has_nonfinite(const Tensor& t) noexcept;
bool has_nonfinite(std::span<const float> xs) noexcept;

}  // namespace fifl::tensor
