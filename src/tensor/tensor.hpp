// Dense row-major float tensor: the numeric workhorse under fifl::nn.
//
// Deliberately small: shapes up to rank 4 cover everything the paper's
// models need (N,C,H,W activations; Out,In,Kh,Kw filters). Ownership is a
// plain std::vector<float> (Core Guidelines R.11 — no naked new), copies
// are explicit via clone() and cheap moves are defaulted.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fifl::tensor {

using Shape = std::vector<std::size_t>;

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// iid U[lo, hi) entries.
  static Tensor uniform(Shape shape, util::Rng& rng, float lo = 0.0f,
                        float hi = 1.0f);
  /// iid N(mean, stddev^2) entries.
  static Tensor gaussian(Shape shape, util::Rng& rng, float mean = 0.0f,
                         float stddev = 1.0f);

  const Shape& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t numel() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> flat() noexcept { return data_; }
  std::span<const float> flat() const noexcept { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked linear access.
  float& at(std::size_t i);
  float at(std::size_t i) const;

  // Multi-dimensional accessors (unchecked in release-style hot loops).
  float& operator()(std::size_t i, std::size_t j) {
    return data_[i * shape_[1] + j];
  }
  float operator()(std::size_t i, std::size_t j) const {
    return data_[i * shape_[1] + j];
  }
  float& operator()(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  float operator()(std::size_t n, std::size_t c, std::size_t h,
                   std::size_t w) const {
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  /// Reinterpret shape without copying; product must match numel().
  Tensor& reshape(Shape shape);
  /// Deep copy (copies are never implicit in hot paths).
  Tensor clone() const { return *this; }

  void fill(float v) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// True iff shapes are identical and all entries within `atol`.
  bool allclose(const Tensor& other, float atol = 1e-5f) const noexcept;

  std::string shape_string() const;

  static std::size_t shape_numel(const Shape& shape) noexcept;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace fifl::tensor
