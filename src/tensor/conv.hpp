// 2-D convolution and pooling primitives (NCHW layout) via im2col, the
// classic trick that turns convolution into one big matmul so the parallel
// GEMM in ops.cpp carries the load. Forward and backward passes are
// provided; nn::Conv2d and nn::MaxPool2d are thin wrappers over these.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace fifl::tensor {

struct ConvSpec {
  std::size_t in_channels = 1;
  std::size_t out_channels = 1;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 0;

  std::size_t out_dim(std::size_t in_dim) const {
    return (in_dim + 2 * padding - kernel) / stride + 1;
  }
};

/// Unfold input (N,C,H,W) into columns (N*OH*OW, C*K*K).
Tensor im2col(const Tensor& input, const ConvSpec& spec);
/// Fold columns (N*OH*OW, C*K*K) back into (N,C,H,W), accumulating overlaps.
Tensor col2im(const Tensor& cols, const ConvSpec& spec, std::size_t n,
              std::size_t h, std::size_t w);

/// output(N,OC,OH,OW) = conv(input(N,C,H,W), weight(OC,C,K,K)) + bias(OC).
Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, const ConvSpec& spec);

struct Conv2dGrads {
  Tensor grad_input;   // (N,C,H,W)
  Tensor grad_weight;  // (OC,C,K,K)
  Tensor grad_bias;    // (OC)
};

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            const Tensor& grad_output, const ConvSpec& spec);

/// Max pooling with square window `window` and equal stride.
/// `argmax_out` stores the flat input index chosen per output element
/// (needed by the backward pass).
Tensor maxpool2d_forward(const Tensor& input, std::size_t window,
                         std::vector<std::size_t>& argmax_out);
Tensor maxpool2d_backward(const Tensor& grad_output,
                          const std::vector<std::size_t>& argmax,
                          const Shape& input_shape);

/// Global average pooling: (N,C,H,W) -> (N,C).
Tensor global_avgpool_forward(const Tensor& input);
Tensor global_avgpool_backward(const Tensor& grad_output,
                               const Shape& input_shape);

}  // namespace fifl::tensor
