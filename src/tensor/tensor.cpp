#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace fifl::tensor {

std::size_t Tensor::shape_numel(const Shape& shape) noexcept {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (shape_numel(shape_) != data_.size()) {
    throw std::invalid_argument("Tensor: data size does not match shape");
  }
}

Tensor Tensor::uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(static_cast<double>(lo), static_cast<double>(hi)));
  }
  return t;
}

Tensor Tensor::gaussian(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.gaussian(static_cast<double>(mean), static_cast<double>(stddev)));
  }
  return t;
}

float& Tensor::at(std::size_t i) {
  if (i >= data_.size()) throw std::out_of_range("Tensor::at");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  if (i >= data_.size()) throw std::out_of_range("Tensor::at");
  return data_[i];
}

Tensor& Tensor::reshape(Shape shape) {
  if (shape_numel(shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch");
  }
  shape_ = std::move(shape);
  return *this;
}

void Tensor::fill(float v) noexcept {
  for (auto& x : data_) x = v;
}

bool Tensor::allclose(const Tensor& other, float atol) const noexcept {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace fifl::tensor
