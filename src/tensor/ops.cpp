#include "tensor/ops.hpp"

#include <cmath>
#include <stdexcept>

#include "util/parallel_for.hpp"

namespace fifl::tensor {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* what) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                a.shape_string() + " vs " + b.shape_string());
  }
}
}  // namespace

void add_inplace(Tensor& dst, const Tensor& src) {
  check_same_shape(dst, src, "add_inplace");
  float* d = dst.data();
  const float* s = src.data();
  for (std::size_t i = 0; i < dst.numel(); ++i) d[i] += s[i];
}

void sub_inplace(Tensor& dst, const Tensor& src) {
  check_same_shape(dst, src, "sub_inplace");
  float* d = dst.data();
  const float* s = src.data();
  for (std::size_t i = 0; i < dst.numel(); ++i) d[i] -= s[i];
}

void mul_inplace(Tensor& dst, const Tensor& src) {
  check_same_shape(dst, src, "mul_inplace");
  float* d = dst.data();
  const float* s = src.data();
  for (std::size_t i = 0; i < dst.numel(); ++i) d[i] *= s[i];
}

void scale_inplace(Tensor& dst, float alpha) {
  float* d = dst.data();
  for (std::size_t i = 0; i < dst.numel(); ++i) d[i] *= alpha;
}

void axpy_inplace(Tensor& dst, float alpha, const Tensor& x) {
  check_same_shape(dst, x, "axpy_inplace");
  float* d = dst.data();
  const float* s = x.data();
  for (std::size_t i = 0; i < dst.numel(); ++i) d[i] += alpha * s[i];
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a.clone();
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a.clone();
  sub_inplace(out, b);
  return out;
}

double sum(const Tensor& t) noexcept {
  double acc = 0.0;
  for (float v : t.flat()) acc += static_cast<double>(v);
  return acc;
}

double dot(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double dot(const Tensor& a, const Tensor& b) { return dot(a.flat(), b.flat()); }

double squared_norm(const Tensor& t) noexcept {
  double acc = 0.0;
  for (float v : t.flat()) acc += static_cast<double>(v) * static_cast<double>(v);
  return acc;
}

double norm(const Tensor& t) noexcept { return std::sqrt(squared_norm(t)); }

double squared_distance(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("squared_distance: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  const double ab = dot(a, b);
  double na = 0.0, nb = 0.0;
  for (float v : a) na += static_cast<double>(v) * static_cast<double>(v);
  for (float v : b) nb += static_cast<double>(v) * static_cast<double>(v);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return ab / (std::sqrt(na) * std::sqrt(nb));
}

std::size_t argmax(std::span<const float> xs) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] > xs[best]) best = i;
  }
  return best;
}

namespace {
void check_rank2(const Tensor& t, const char* what) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(what) + ": expected rank-2, got " +
                                t.shape_string());
  }
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul");
  check_rank2(b, "matmul");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  util::parallel_for(
      0, m,
      [&](std::size_t i) {
        float* crow = pc + i * n;
        const float* arow = pa + i * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = pb + kk * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      },
      /*grain=*/std::max<std::size_t>(1, 4096 / std::max<std::size_t>(1, n * k / m + 1)));
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt");
  check_rank2(b, "matmul_nt");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  util::parallel_for(
      0, m,
      [&](std::size_t i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * n;
        for (std::size_t j = 0; j < n; ++j) {
          const float* brow = pb + j * k;
          float acc = 0.0f;
          for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
          crow[j] = acc;
        }
      },
      /*grain=*/1);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn");
  check_rank2(b, "matmul_tn");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul_tn: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  util::parallel_for(
      0, m,
      [&](std::size_t i) {
        float* crow = pc + i * n;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float av = pa[kk * m + i];
          if (av == 0.0f) continue;
          const float* brow = pb + kk * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      },
      /*grain=*/1);
  return c;
}

Tensor transpose(const Tensor& a) {
  check_rank2(a, "transpose");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) out(j, i) = a(i, j);
  }
  return out;
}

bool has_nonfinite(std::span<const float> xs) noexcept {
  for (float v : xs) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

bool has_nonfinite(const Tensor& t) noexcept { return has_nonfinite(t.flat()); }

}  // namespace fifl::tensor
