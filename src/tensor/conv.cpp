#include "tensor/conv.hpp"

#include <limits>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/parallel_for.hpp"

namespace fifl::tensor {

namespace {
void check_nchw(const Tensor& t, const char* what) {
  if (t.rank() != 4) {
    throw std::invalid_argument(std::string(what) + ": expected NCHW tensor, got " +
                                t.shape_string());
  }
}
}  // namespace

Tensor im2col(const Tensor& input, const ConvSpec& spec) {
  check_nchw(input, "im2col");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  if (c != spec.in_channels) throw std::invalid_argument("im2col: channel mismatch");
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  const std::size_t patch = c * spec.kernel * spec.kernel;
  Tensor cols({n * oh * ow, patch});
  float* pc = cols.data();
  util::parallel_for(
      0, n * oh * ow,
      [&](std::size_t row) {
        const std::size_t img = row / (oh * ow);
        const std::size_t rem = row % (oh * ow);
        const std::size_t oy = rem / ow;
        const std::size_t ox = rem % ow;
        float* out = pc + row * patch;
        std::size_t idx = 0;
        for (std::size_t ch = 0; ch < c; ++ch) {
          for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                static_cast<std::ptrdiff_t>(spec.padding);
            for (std::size_t kx = 0; kx < spec.kernel; ++kx, ++idx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                  static_cast<std::ptrdiff_t>(spec.padding);
              if (iy < 0 || ix < 0 || iy >= static_cast<std::ptrdiff_t>(h) ||
                  ix >= static_cast<std::ptrdiff_t>(w)) {
                out[idx] = 0.0f;
              } else {
                out[idx] = input(img, ch, static_cast<std::size_t>(iy),
                                 static_cast<std::size_t>(ix));
              }
            }
          }
        }
      },
      /*grain=*/16);
  return cols;
}

Tensor col2im(const Tensor& cols, const ConvSpec& spec, std::size_t n,
              std::size_t h, std::size_t w) {
  const std::size_t c = spec.in_channels;
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  const std::size_t patch = c * spec.kernel * spec.kernel;
  if (cols.rank() != 2 || cols.dim(0) != n * oh * ow || cols.dim(1) != patch) {
    throw std::invalid_argument("col2im: column shape mismatch");
  }
  Tensor out({n, c, h, w});
  // Parallel over images: each image's patches only write into its own
  // output slab, so there are no cross-thread races.
  util::parallel_for(
      0, n,
      [&](std::size_t img) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::size_t row = (img * oh + oy) * ow + ox;
            const float* src = cols.data() + row * patch;
            std::size_t idx = 0;
            for (std::size_t ch = 0; ch < c; ++ch) {
              for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                    static_cast<std::ptrdiff_t>(spec.padding);
                for (std::size_t kx = 0; kx < spec.kernel; ++kx, ++idx) {
                  const std::ptrdiff_t ix =
                      static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                      static_cast<std::ptrdiff_t>(spec.padding);
                  if (iy < 0 || ix < 0 ||
                      iy >= static_cast<std::ptrdiff_t>(h) ||
                      ix >= static_cast<std::ptrdiff_t>(w)) {
                    continue;
                  }
                  out(img, ch, static_cast<std::size_t>(iy),
                      static_cast<std::size_t>(ix)) += src[idx];
                }
              }
            }
          }
        }
      },
      /*grain=*/1);
  return out;
}

Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, const ConvSpec& spec) {
  check_nchw(input, "conv2d_forward");
  check_nchw(weight, "conv2d_forward weight");
  const std::size_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t oc = spec.out_channels;
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;

  Tensor cols = im2col(input, spec);            // (N*OH*OW, patch)
  Tensor wmat = weight.clone().reshape({oc, patch});
  Tensor prod = matmul_nt(cols, wmat);          // (N*OH*OW, OC)

  Tensor out({n, oc, oh, ow});
  const float* pp = prod.data();
  const float* pb = bias.data();
  util::parallel_for(
      0, n * oh * ow,
      [&](std::size_t row) {
        const std::size_t img = row / (oh * ow);
        const std::size_t rem = row % (oh * ow);
        const std::size_t oy = rem / ow;
        const std::size_t ox = rem % ow;
        for (std::size_t ch = 0; ch < oc; ++ch) {
          out(img, ch, oy, ox) = pp[row * oc + ch] + pb[ch];
        }
      },
      /*grain=*/64);
  return out;
}

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            const Tensor& grad_output, const ConvSpec& spec) {
  const std::size_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t oc = spec.out_channels;
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;

  // grad_output (N,OC,OH,OW) -> (N*OH*OW, OC)
  Tensor gmat({n * oh * ow, oc});
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < oc; ++ch) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          gmat((img * oh + oy) * ow + ox, ch) = grad_output(img, ch, oy, ox);
        }
      }
    }
  }

  Tensor cols = im2col(input, spec);  // (N*OH*OW, patch)

  Conv2dGrads grads;
  // dW = gmat^T * cols  -> (OC, patch)
  Tensor gw = matmul_tn(gmat, cols);
  grads.grad_weight = gw.reshape(
      {oc, spec.in_channels, spec.kernel, spec.kernel});

  // db = column sums of gmat.
  grads.grad_bias = Tensor({oc});
  for (std::size_t row = 0; row < n * oh * ow; ++row) {
    for (std::size_t ch = 0; ch < oc; ++ch) {
      grads.grad_bias[ch] += gmat(row, ch);
    }
  }

  // dcols = gmat * W  -> (N*OH*OW, patch), then fold back.
  Tensor wmat = weight.clone().reshape({oc, patch});
  Tensor dcols = matmul(gmat, wmat);
  grads.grad_input = col2im(dcols, spec, n, h, w);
  return grads;
}

Tensor maxpool2d_forward(const Tensor& input, std::size_t window,
                         std::vector<std::size_t>& argmax_out) {
  check_nchw(input, "maxpool2d_forward");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  if (window == 0 || h % window != 0 || w % window != 0) {
    throw std::invalid_argument("maxpool2d: window must evenly divide H and W");
  }
  const std::size_t oh = h / window, ow = w / window;
  Tensor out({n, c, oh, ow});
  argmax_out.assign(n * c * oh * ow, 0);
  util::parallel_for(
      0, n * c,
      [&](std::size_t nc) {
        const std::size_t img = nc / c;
        const std::size_t ch = nc % c;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            float best = -std::numeric_limits<float>::infinity();
            std::size_t best_idx = 0;
            for (std::size_t ky = 0; ky < window; ++ky) {
              for (std::size_t kx = 0; kx < window; ++kx) {
                const std::size_t iy = oy * window + ky;
                const std::size_t ix = ox * window + kx;
                const float v = input(img, ch, iy, ix);
                if (v > best) {
                  best = v;
                  best_idx = ((img * c + ch) * h + iy) * w + ix;
                }
              }
            }
            out(img, ch, oy, ox) = best;
            argmax_out[((img * c + ch) * oh + oy) * ow + ox] = best_idx;
          }
        }
      },
      /*grain=*/1);
  return out;
}

Tensor maxpool2d_backward(const Tensor& grad_output,
                          const std::vector<std::size_t>& argmax,
                          const Shape& input_shape) {
  Tensor grad_input(input_shape);
  if (argmax.size() != grad_output.numel()) {
    throw std::invalid_argument("maxpool2d_backward: argmax size mismatch");
  }
  const float* g = grad_output.data();
  float* gi = grad_input.data();
  for (std::size_t i = 0; i < argmax.size(); ++i) gi[argmax[i]] += g[i];
  return grad_input;
}

Tensor global_avgpool_forward(const Tensor& input) {
  check_nchw(input, "global_avgpool_forward");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  Tensor out({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      float acc = 0.0f;
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) acc += input(img, ch, y, x);
      }
      out(img, ch) = acc * inv;
    }
  }
  return out;
}

Tensor global_avgpool_backward(const Tensor& grad_output,
                               const Shape& input_shape) {
  if (input_shape.size() != 4) {
    throw std::invalid_argument("global_avgpool_backward: need NCHW shape");
  }
  const std::size_t n = input_shape[0], c = input_shape[1], h = input_shape[2],
                    w = input_shape[3];
  Tensor grad_input(input_shape);
  const float inv = 1.0f / static_cast<float>(h * w);
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = grad_output(img, ch) * inv;
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) grad_input(img, ch, y, x) = g;
      }
    }
  }
  return grad_input;
}

}  // namespace fifl::tensor
