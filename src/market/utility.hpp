// The evaluation's utility model (Sec. 5.1, after Zhan et al.): the
// system revenue from n training samples is Ψ(n) = log(1 + n), and a
// federation's revenue is Ψ applied to its pooled sample count.
#pragma once

#include <cstddef>
#include <span>

namespace fifl::market {

/// Ψ(n) = log(1 + n).
double utility(double samples);

/// Ψ(Σ n_i) over a federation's sample counts.
double federation_utility(std::span<const double> samples);

/// Marginal utility of member i: Ψ(A) − Ψ(A \ {i}).
double marginal_utility(std::span<const double> samples, std::size_t i);

}  // namespace fifl::market
