// The worker-market simulation behind Figs. 4-6 (Sec. 5.2).
//
// Five federations — one per incentive mechanism — compete for the same
// pool of workers. Per trial: worker sample counts are drawn U[1, 10000];
// each mechanism computes reward shares for the full pool; a worker's
// *attractiveness* toward mechanism m is its relative reward proportion
// share_m(i) / Σ_m' share_m'(i); each worker then joins one federation
// sampled with those probabilities (the paper's greedy probabilistic
// joining). Revenue of a federation is Ψ(attracted samples).
//
// Unreliable scenario (Fig. 6): a fraction u of workers are attackers
// with aggregate attack degree ℧. Baselines cannot tell them apart, so an
// attacked federation's revenue is scaled by (1 − ℧ · s/u), s = attacker
// data share it attracted (damage = ℧ exactly when it attracts its
// proportional share of attackers). FIFL's detection module identifies
// attackers (their reputation collapses), they earn punishments instead
// of rewards — so they stop joining FIFL — and any that do join are
// excluded before they can do damage: FIFL's revenue is Ψ(honest
// attracted samples). See DESIGN.md for the substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "market/baselines.hpp"

namespace fifl::market {

struct MarketConfig {
  std::size_t workers = 20;
  std::size_t trials = 100;
  double min_samples = 1.0;
  double max_samples = 10000.0;
  std::size_t quality_groups = 10;
  /// Reputation attackers end up with under FIFL detection (≈0 but not
  /// exactly 0: detection is imperfect at low intensity, Fig. 9).
  double detected_attacker_reputation = 0.05;
  std::uint64_t seed = 2021;
};

struct MarketResult {
  std::vector<std::string> mechanisms;
  /// reward_by_group[m][g]: mean reward share of a worker in quality
  /// group g (samples in [g, g+1)·1000) under mechanism m   (Fig. 4a).
  std::vector<std::vector<double>> reward_by_group;
  /// attractiveness_by_group[m][g]: mean relative reward proportion
  /// (Fig. 4b).
  std::vector<std::vector<double>> attractiveness_by_group;
  /// data_share[m]: fraction of all data attracted                 (Fig. 5a).
  std::vector<double> data_share;
  /// revenue[m]: mean federation revenue Ψ(attracted)              (Fig. 5b).
  std::vector<double> revenue;
  /// relative_revenue[m] = revenue[m] / revenue[FIFL].
  std::vector<double> relative_revenue;
};

class MarketSimulator {
 public:
  explicit MarketSimulator(MarketConfig config);

  const MarketConfig& config() const noexcept { return config_; }

  /// Reliable federation: everyone honest (Figs. 4-5).
  MarketResult run_reliable() const;

  /// Unreliable federation with `unreliable_fraction` attackers of
  /// aggregate attack degree ℧ (Fig. 6).
  MarketResult run_under_attack(double attack_degree,
                                double unreliable_fraction) const;

 private:
  MarketResult run(double attack_degree, double unreliable_fraction) const;

  MarketConfig config_;
};

}  // namespace fifl::market
