// FLI — the Fairness-aware incentive scheme of Yu et al. (AIES'20),
// sketched in the paper's related work: the task publisher has a budget
// per round and pays workers over time so that (a) the collective utility
// of payments is maximised and (b) inequality between workers' unpaid
// contributions ("regret") is minimised.
//
// This is a faithful-lite implementation of the scheme's core dynamic:
// each round every worker's contribution is added to its owed account
// Y_i; the round budget B(t) is then distributed proportionally to owed
// amounts (water-filling capped at what is owed), so persistent
// contributors are paid back and temporary imbalances shrink. Exposed so
// the extension benches can contrast temporal budget-sharing against
// FIFL's per-round product rule.
#pragma once

#include <span>
#include <vector>

namespace fifl::market {

class FliScheduler {
 public:
  explicit FliScheduler(std::size_t workers);

  std::size_t workers() const noexcept { return owed_.size(); }

  /// One round: credit `contributions` (negative entries are treated as 0
  /// — FLI has no punishment channel), then split `budget` against the
  /// owed accounts. Returns the per-worker payments of this round.
  std::vector<double> step(double budget, std::span<const double> contributions);

  /// Outstanding unpaid contribution ("regret") per worker.
  const std::vector<double>& owed() const noexcept { return owed_; }
  /// Lifetime totals.
  const std::vector<double>& paid() const noexcept { return paid_; }
  double total_paid() const noexcept;

  /// Max-min inequality of the owed accounts: max(Y) − min(Y).
  double regret_inequality() const noexcept;

 private:
  std::vector<double> owed_;
  std::vector<double> paid_;
};

}  // namespace fifl::market
