#include "market/market_sim.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "market/utility.hpp"

namespace fifl::market {

MarketSimulator::MarketSimulator(MarketConfig config) : config_(config) {
  if (config_.workers == 0 || config_.trials == 0 || config_.quality_groups == 0) {
    throw std::invalid_argument("MarketSimulator: zero workers/trials/groups");
  }
  if (!(config_.max_samples > config_.min_samples)) {
    throw std::invalid_argument("MarketSimulator: bad sample range");
  }
}

MarketResult MarketSimulator::run_reliable() const { return run(0.0, 0.0); }

MarketResult MarketSimulator::run_under_attack(
    double attack_degree, double unreliable_fraction) const {
  if (attack_degree < 0.0 || attack_degree > 1.0) {
    throw std::invalid_argument("run_under_attack: attack degree outside [0,1]");
  }
  if (unreliable_fraction <= 0.0 || unreliable_fraction >= 1.0) {
    throw std::invalid_argument("run_under_attack: fraction outside (0,1)");
  }
  return run(attack_degree, unreliable_fraction);
}

MarketResult MarketSimulator::run(double attack_degree,
                                  double unreliable_fraction) const {
  const auto mechanisms = standard_mechanisms(config_.seed ^ 0xabcd);
  const std::size_t n_mech = mechanisms.size();
  const std::size_t n = config_.workers;
  const std::size_t groups = config_.quality_groups;
  const std::size_t fifl_index = n_mech - 1;  // standard_mechanisms order

  MarketResult result;
  for (const auto& m : mechanisms) result.mechanisms.push_back(m->name());
  result.reward_by_group.assign(n_mech, std::vector<double>(groups, 0.0));
  result.attractiveness_by_group.assign(n_mech, std::vector<double>(groups, 0.0));
  result.data_share.assign(n_mech, 0.0);
  result.revenue.assign(n_mech, 0.0);

  std::vector<std::vector<double>> group_counts(
      n_mech, std::vector<double>(groups, 0.0));
  double total_data_all_trials = 0.0;

  util::Rng rng(config_.seed);
  const auto n_attackers = static_cast<std::size_t>(
      std::llround(unreliable_fraction * static_cast<double>(n)));

  for (std::size_t trial = 0; trial < config_.trials; ++trial) {
    // --- draw the worker pool -------------------------------------------
    std::vector<double> samples(n);
    for (auto& s : samples) {
      s = rng.uniform(config_.min_samples, config_.max_samples);
    }
    std::vector<char> attacker(n, 0);
    if (n_attackers > 0) {
      std::vector<std::size_t> ids(n);
      std::iota(ids.begin(), ids.end(), std::size_t{0});
      rng.shuffle(ids.begin(), ids.size());
      for (std::size_t k = 0; k < n_attackers; ++k) attacker[ids[k]] = 1;
    }

    // FIFL sees attacker reputations collapse via detection; the other
    // mechanisms have no reputation notion (empty span => all ones).
    std::vector<double> fifl_reputations(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (attacker[i]) fifl_reputations[i] = config_.detected_attacker_reputation;
    }

    // --- shares and attractiveness --------------------------------------
    std::vector<std::vector<double>> shares(n_mech);
    for (std::size_t m = 0; m < n_mech; ++m) {
      shares[m] = (m == fifl_index)
                      ? mechanisms[m]->shares(samples, fifl_reputations)
                      : mechanisms[m]->shares(samples);
    }
    std::vector<std::vector<double>> attractiveness(
        n_mech, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
      double total = 0.0;
      for (std::size_t m = 0; m < n_mech; ++m) total += shares[m][i];
      if (total <= 0.0) continue;
      for (std::size_t m = 0; m < n_mech; ++m) {
        attractiveness[m][i] = shares[m][i] / total;
      }
    }

    // --- per-group statistics -------------------------------------------
    const double group_width =
        (config_.max_samples - config_.min_samples) / static_cast<double>(groups);
    for (std::size_t i = 0; i < n; ++i) {
      auto g = static_cast<std::size_t>((samples[i] - config_.min_samples) /
                                        group_width);
      g = std::min(g, groups - 1);
      for (std::size_t m = 0; m < n_mech; ++m) {
        result.reward_by_group[m][g] += shares[m][i];
        result.attractiveness_by_group[m][g] += attractiveness[m][i];
        group_counts[m][g] += 1.0;
      }
    }

    // --- probabilistic joining ------------------------------------------
    std::vector<double> attracted_total(n_mech, 0.0);
    std::vector<double> attracted_honest(n_mech, 0.0);
    std::vector<double> attracted_attacker(n_mech, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double total = 0.0;
      for (std::size_t m = 0; m < n_mech; ++m) total += attractiveness[m][i];
      if (total <= 0.0) continue;  // nobody wants this worker; it stays out
      double pick = rng.uniform() * total;
      std::size_t chosen = n_mech - 1;
      for (std::size_t m = 0; m < n_mech; ++m) {
        pick -= attractiveness[m][i];
        if (pick <= 0.0) {
          chosen = m;
          break;
        }
      }
      attracted_total[chosen] += samples[i];
      if (attacker[i]) {
        attracted_attacker[chosen] += samples[i];
      } else {
        attracted_honest[chosen] += samples[i];
      }
    }
    total_data_all_trials +=
        std::accumulate(samples.begin(), samples.end(), 0.0);

    // --- revenue ----------------------------------------------------------
    for (std::size_t m = 0; m < n_mech; ++m) {
      result.data_share[m] += attracted_total[m];
      double rev;
      if (m == fifl_index) {
        // Detection removes attackers before they can damage the model.
        rev = utility(attracted_honest[m]);
      } else {
        rev = utility(attracted_total[m]);
        if (attack_degree > 0.0 && attracted_total[m] > 0.0 &&
            unreliable_fraction > 0.0) {
          const double attacker_share =
              attracted_attacker[m] / attracted_total[m];
          const double damage =
              std::clamp(attack_degree * attacker_share / unreliable_fraction,
                         0.0, 1.0);
          rev *= 1.0 - damage;
        }
      }
      result.revenue[m] += rev;
    }
  }

  // --- normalise across trials -------------------------------------------
  for (std::size_t m = 0; m < n_mech; ++m) {
    for (std::size_t g = 0; g < groups; ++g) {
      if (group_counts[m][g] > 0.0) {
        result.reward_by_group[m][g] /= group_counts[m][g];
        result.attractiveness_by_group[m][g] /= group_counts[m][g];
      }
    }
    result.data_share[m] /= total_data_all_trials;
    result.revenue[m] /= static_cast<double>(config_.trials);
  }
  result.relative_revenue.assign(n_mech, 0.0);
  const double fifl_rev = result.revenue[fifl_index];
  for (std::size_t m = 0; m < n_mech; ++m) {
    result.relative_revenue[m] =
        fifl_rev != 0.0 ? result.revenue[m] / fifl_rev : 0.0;
  }
  return result;
}

}  // namespace fifl::market
