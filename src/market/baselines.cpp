#include "market/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "market/utility.hpp"

namespace fifl::market {

namespace {
void check_reputations(std::span<const double> samples,
                       std::span<const double> reputations) {
  if (!reputations.empty() && reputations.size() != samples.size()) {
    throw std::invalid_argument("IncentiveMechanism: reputation size mismatch");
  }
}
}  // namespace

std::vector<double> IncentiveMechanism::shares(
    std::span<const double> samples,
    std::span<const double> reputations) const {
  std::vector<double> w = weights(samples, reputations);
  double total = 0.0;
  for (double v : w) {
    if (v > 0.0) total += v;
  }
  if (total <= 0.0) {
    std::fill(w.begin(), w.end(), 0.0);
    return w;
  }
  for (double& v : w) v = std::max(v, 0.0) / total;
  return w;
}

std::vector<double> IndividualIncentive::weights(
    std::span<const double> samples, std::span<const double> reputations) const {
  check_reputations(samples, reputations);
  std::vector<double> w(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) w[i] = utility(samples[i]);
  return w;
}

std::vector<double> EqualIncentive::weights(
    std::span<const double> samples, std::span<const double> reputations) const {
  check_reputations(samples, reputations);
  if (samples.empty()) return {};
  return std::vector<double>(samples.size(),
                             1.0 / static_cast<double>(samples.size()));
}

std::vector<double> UnionIncentive::weights(
    std::span<const double> samples, std::span<const double> reputations) const {
  check_reputations(samples, reputations);
  std::vector<double> w(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    w[i] = marginal_utility(samples, i);
  }
  return w;
}

ShapleyIncentive::ShapleyIncentive(std::size_t exact_limit,
                                   std::size_t mc_permutations,
                                   std::uint64_t seed)
    : exact_limit_(exact_limit), mc_permutations_(mc_permutations), seed_(seed) {
  if (mc_permutations == 0) {
    throw std::invalid_argument("ShapleyIncentive: zero permutations");
  }
}

std::vector<double> ShapleyIncentive::weights(
    std::span<const double> samples, std::span<const double> reputations) const {
  check_reputations(samples, reputations);
  if (samples.size() <= exact_limit_) return exact_weights(samples);
  return monte_carlo_weights(samples);
}

std::vector<double> ShapleyIncentive::exact_weights(
    std::span<const double> samples) const {
  const std::size_t n = samples.size();
  if (n > 25) {
    throw std::invalid_argument("ShapleyIncentive::exact_weights: N too large");
  }
  std::vector<double> w(n, 0.0);
  if (n == 0) return w;

  // Precompute factorials.
  std::vector<double> fact(n + 1, 1.0);
  for (std::size_t k = 1; k <= n; ++k) {
    fact[k] = fact[k - 1] * static_cast<double>(k);
  }

  // Enumerate subsets S not containing i; weight |S|!(n-|S|-1)!/n!.
  const std::size_t subsets = std::size_t{1} << n;
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (mask & (std::size_t{1} << j)) {
        sum += samples[j];
        ++count;
      }
    }
    const double base = utility(sum);
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) continue;
      const double marginal = utility(sum + samples[i]) - base;
      const double coeff =
          fact[count] * fact[n - count - 1] / fact[n];
      w[i] += coeff * marginal;
    }
  }
  return w;
}

std::vector<double> ShapleyIncentive::monte_carlo_weights(
    std::span<const double> samples) const {
  const std::size_t n = samples.size();
  std::vector<double> w(n, 0.0);
  if (n == 0) return w;
  util::Rng rng(seed_);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t p = 0; p < mc_permutations_; ++p) {
    rng.shuffle(order.begin(), order.size());
    double sum = 0.0;
    for (std::size_t idx : order) {
      const double before = utility(sum);
      sum += samples[idx];
      w[idx] += utility(sum) - before;
    }
  }
  for (double& v : w) v /= static_cast<double>(mc_permutations_);
  return w;
}

FiflIncentive::FiflIncentive(double barrier_samples)
    : barrier_samples_(barrier_samples) {
  if (barrier_samples < 0.0) {
    throw std::invalid_argument("FiflIncentive: negative barrier");
  }
}

std::vector<double> FiflIncentive::weights(
    std::span<const double> samples, std::span<const double> reputations) const {
  check_reputations(samples, reputations);
  const std::size_t n = samples.size();
  std::vector<double> w(n, 0.0);
  if (n == 0) return w;
  const double total = std::accumulate(samples.begin(), samples.end(), 0.0);
  // Market-level b_h: the marginal utility a hypothetical reference worker
  // with `barrier_samples_` samples would add to this federation.
  const double barrier = utility(total) - utility(std::max(0.0, total - barrier_samples_));
  for (std::size_t i = 0; i < n; ++i) {
    const double contribution = marginal_utility(samples, i) - barrier;
    const double reputation = reputations.empty() ? 1.0 : reputations[i];
    w[i] = reputation * contribution;  // may be negative: punished
  }
  return w;
}

std::vector<MechanismPtr> standard_mechanisms(std::uint64_t seed) {
  std::vector<MechanismPtr> out;
  out.push_back(std::make_unique<IndividualIncentive>());
  out.push_back(std::make_unique<EqualIncentive>());
  out.push_back(std::make_unique<UnionIncentive>());
  out.push_back(std::make_unique<ShapleyIncentive>(12, 2000, seed));
  out.push_back(std::make_unique<FiflIncentive>());
  return out;
}

}  // namespace fifl::market
