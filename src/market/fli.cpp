#include "market/fli.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fifl::market {

FliScheduler::FliScheduler(std::size_t workers)
    : owed_(workers, 0.0), paid_(workers, 0.0) {
  if (workers == 0) throw std::invalid_argument("FliScheduler: zero workers");
}

std::vector<double> FliScheduler::step(double budget,
                                       std::span<const double> contributions) {
  if (contributions.size() != owed_.size()) {
    throw std::invalid_argument("FliScheduler: contribution count mismatch");
  }
  if (budget < 0.0) throw std::invalid_argument("FliScheduler: negative budget");

  for (std::size_t i = 0; i < owed_.size(); ++i) {
    if (contributions[i] > 0.0) owed_[i] += contributions[i];
  }

  std::vector<double> payments(owed_.size(), 0.0);
  double remaining = budget;
  // Proportional split capped by what is owed; re-distribute any slack
  // freed by the caps (at most `workers` passes — each pass fully pays
  // off at least one account or exhausts the budget).
  for (std::size_t pass = 0; pass < owed_.size() && remaining > 1e-15; ++pass) {
    double open_total = 0.0;
    for (std::size_t i = 0; i < owed_.size(); ++i) {
      open_total += std::max(0.0, owed_[i] - payments[i]);
    }
    if (open_total <= 1e-15) break;
    bool any_capped = false;
    const double pool = remaining;
    for (std::size_t i = 0; i < owed_.size(); ++i) {
      const double open = owed_[i] - payments[i];
      if (open <= 0.0) continue;
      double share = pool * open / open_total;
      if (share >= open) {
        share = open;
        any_capped = true;
      }
      payments[i] += share;
      remaining -= share;
    }
    if (!any_capped) break;
  }

  for (std::size_t i = 0; i < owed_.size(); ++i) {
    owed_[i] -= payments[i];
    paid_[i] += payments[i];
  }
  return payments;
}

double FliScheduler::total_paid() const noexcept {
  return std::accumulate(paid_.begin(), paid_.end(), 0.0);
}

double FliScheduler::regret_inequality() const noexcept {
  if (owed_.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(owed_.begin(), owed_.end());
  return *hi - *lo;
}

}  // namespace fifl::market
