// The payoff-sharing mechanisms compared in Sec. 5.2 (Eq. 18-22):
//   Individual — ω_i = Ψ(n_i)
//   Equal      — ω_i = 1/N
//   Union      — ω_i = Ψ(A) − Ψ(A\{i})
//   Shapley    — ω_i = average marginal utility over all join orders
//                (exact subset enumeration for small N, Monte-Carlo
//                permutation sampling otherwise)
//   FIFL       — ω_i = R_i · C_i, with the market-level contribution
//                C_i = max(0, marginal_i − barrier) modelling Eq. 14's
//                b_h free-rider barrier: workers whose marginal utility
//                does not clear a reference worker's earn nothing, and
//                the pool concentrates on the rest (see DESIGN.md).
//
// A mechanism maps the federation's sample counts (and per-worker
// reputations, used only by FIFL) to normalised reward shares that sum
// to 1 over non-negative entries.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fifl::market {

class IncentiveMechanism {
 public:
  virtual ~IncentiveMechanism() = default;
  virtual std::string name() const = 0;

  /// Unnormalised reward weights ω_i (Eq. 18). `reputations` may be
  /// empty, meaning all workers fully reputable (R_i = 1).
  virtual std::vector<double> weights(
      std::span<const double> samples,
      std::span<const double> reputations) const = 0;

  /// Normalised shares ω_i / Σ_j ω_j (zero vector if all weights are 0).
  std::vector<double> shares(std::span<const double> samples,
                             std::span<const double> reputations = {}) const;
};

using MechanismPtr = std::unique_ptr<IncentiveMechanism>;

class IndividualIncentive final : public IncentiveMechanism {
 public:
  std::string name() const override { return "Individual"; }
  std::vector<double> weights(std::span<const double> samples,
                              std::span<const double> reputations) const override;
};

class EqualIncentive final : public IncentiveMechanism {
 public:
  std::string name() const override { return "Equal"; }
  std::vector<double> weights(std::span<const double> samples,
                              std::span<const double> reputations) const override;
};

class UnionIncentive final : public IncentiveMechanism {
 public:
  std::string name() const override { return "Union"; }
  std::vector<double> weights(std::span<const double> samples,
                              std::span<const double> reputations) const override;
};

class ShapleyIncentive final : public IncentiveMechanism {
 public:
  /// Exact for N <= exact_limit (O(2^N) subset enumeration); Monte-Carlo
  /// with `mc_permutations` join orders above that.
  explicit ShapleyIncentive(std::size_t exact_limit = 12,
                            std::size_t mc_permutations = 2000,
                            std::uint64_t seed = 99);
  std::string name() const override { return "Shapley"; }
  std::vector<double> weights(std::span<const double> samples,
                              std::span<const double> reputations) const override;

  std::vector<double> exact_weights(std::span<const double> samples) const;
  std::vector<double> monte_carlo_weights(std::span<const double> samples) const;

 private:
  std::size_t exact_limit_;
  std::size_t mc_permutations_;
  std::uint64_t seed_;
};

class FiflIncentive final : public IncentiveMechanism {
 public:
  /// `barrier_samples` is the reference worker size n_ref defining the
  /// market-level b_h: a worker must out-contribute a hypothetical
  /// n_ref-sample worker to earn anything (Eq. 14's threshold).
  explicit FiflIncentive(double barrier_samples = 500.0);
  std::string name() const override { return "FIFL"; }
  std::vector<double> weights(std::span<const double> samples,
                              std::span<const double> reputations) const override;

  double barrier_samples() const noexcept { return barrier_samples_; }

 private:
  double barrier_samples_;
};

/// The five mechanisms in the paper's comparison order.
std::vector<MechanismPtr> standard_mechanisms(std::uint64_t seed = 99);

}  // namespace fifl::market
