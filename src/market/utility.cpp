#include "market/utility.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fifl::market {

double utility(double samples) {
  if (samples < 0.0) throw std::invalid_argument("utility: negative samples");
  return std::log1p(samples);
}

double federation_utility(std::span<const double> samples) {
  const double total = std::accumulate(samples.begin(), samples.end(), 0.0);
  return utility(total);
}

double marginal_utility(std::span<const double> samples, std::size_t i) {
  if (i >= samples.size()) {
    throw std::out_of_range("marginal_utility: index out of range");
  }
  const double total = std::accumulate(samples.begin(), samples.end(), 0.0);
  return utility(total) - utility(total - samples[i]);
}

}  // namespace fifl::market
