// Attack detection module (Sec. 4.1).
//
// The exact detection score is the loss difference S(θ, G_i) = L_t(θ) −
// L_t(θ − G_i) (Eq. 5, after Zeno). FIFL's contribution is the Taylor
// first-order approximation S_i ≈ ⟨G, G_i⟩ against a benchmark gradient G
// assembled from the servers' own local gradients — no inference needed.
// In the polycentric topology each server j scores its slice, S_i^j =
// ⟨g̃^j, g_i^j⟩, and the global score is the sum over servers (Eq. 6).
//
// Raw inner products scale with ‖G‖·‖G_i‖, which shrinks as training
// converges; a fixed threshold S_y is then meaningless across rounds. We
// therefore classify on a normalised score (cosine by default, so S_y is
// in [-1, 1] as in the paper's Fig. 9 sweep) while still exposing the raw
// per-server scores that go into the audit ledger.
#pragma once

#include <span>
#include <vector>

#include "fl/topology.hpp"

namespace fifl::core {

enum class ScoreKind {
  kRaw,        // Σ_j ⟨g̃^j, g_i^j⟩, unnormalised (Eq. 6 literally)
  kCosine,     // raw / (‖G̃‖·‖G_i‖)  — default; S_y in [-1, 1]
  kProjection  // raw / ‖G̃‖²          — length of G_i along the benchmark
};

struct DetectionConfig {
  double threshold = 0.0;  // S_y: score >= S_y => honest (r_i = 1)
  ScoreKind score = ScoreKind::kCosine;
};

struct DetectionResult {
  std::vector<double> scores;    // S_i (normalised per config), NaN if absent
  std::vector<int> accepted;     // r_i ∈ {0,1}; 0 for absent uploads too
  std::vector<int> uncertain;    // 1 iff upload did not arrive
  /// Raw per-server scores S_i^j: server_scores[j][i] = ⟨g̃^j, g_i^j⟩.
  std::vector<std::vector<double>> server_scores;
};

class DetectionModule {
 public:
  explicit DetectionModule(DetectionConfig config) : config_(config) {}

  const DetectionConfig& config() const noexcept { return config_; }
  void set_threshold(double s_y) noexcept { config_.threshold = s_y; }

  /// Scores every upload against the benchmark slices (one per server,
  /// sizes given by `plan`). uploads[i] drives scores[i].
  DetectionResult run(std::span<const fl::Upload> uploads,
                      const fl::SlicePlan& plan,
                      const std::vector<std::vector<float>>& benchmark) const;

  /// Convenience overload using the cluster's own members as benchmarks.
  DetectionResult run(std::span<const fl::Upload> uploads,
                      const fl::ServerCluster& cluster) const;

  /// The exact (expensive) score of Eq. 5 for comparison/ablation:
  /// evaluate `loss_at(params)` at θ and θ − G_i.
  template <typename LossFn>
  static double exact_score(const std::vector<float>& params,
                            const fl::Gradient& gradient, LossFn&& loss_at) {
    std::vector<float> shifted = params;
    for (std::size_t k = 0; k < shifted.size(); ++k) {
      shifted[k] -= gradient[k];
    }
    return loss_at(params) - loss_at(shifted);
  }

 private:
  DetectionConfig config_;
};

/// Detection-quality metrics against ground-truth attack labels.
struct DetectionMetrics {
  double accuracy = 0.0;        // overall fraction correct
  double true_positive = 0.0;   // honest accepted / honest    (paper's TP)
  double true_negative = 0.0;   // attacker rejected / attacker (paper's TN)
  std::size_t honest_total = 0;
  std::size_t attacker_total = 0;
};

DetectionMetrics evaluate_detection(const DetectionResult& result,
                                    std::span<const fl::Upload> uploads);

}  // namespace fifl::core
