#include "core/round_common.hpp"

#include <limits>

namespace fifl::core {

void summarize_report(const RoundReport& report,
                      std::span<const fl::Upload> uploads,
                      RoundRecord& record) {
  record.fairness = report.fairness;
  record.degraded = report.degraded;
  record.accepted = record.rejected = record.uncertain = 0;
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    if (report.detection.uncertain[i]) {
      ++record.uncertain;
    } else if (report.detection.accepted[i]) {
      ++record.accepted;
    } else {
      ++record.rejected;
    }
  }
}

obs::RoundTrace make_round_trace(std::uint64_t round, const RoundReport& report,
                                 std::span<const fl::Upload> uploads) {
  obs::RoundTrace trace;
  trace.round = round;
  trace.degraded = report.degraded;
  trace.fairness = report.fairness;
  trace.workers.reserve(uploads.size());
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    obs::WorkerTrace wt;
    wt.id = uploads[i].worker;
    wt.arrived = uploads[i].arrived;
    wt.accepted = report.detection.accepted[i] != 0;
    wt.uncertain = report.detection.uncertain[i] != 0;
    wt.detection_score = report.detection.scores[i];
    wt.reputation = report.reputations[i];
    wt.contribution = report.contribution.contributions[i];
    wt.reward = report.rewards[i];
    trace.workers.push_back(wt);
  }
  return trace;
}

obs::RoundTrace make_fedavg_round_trace(std::uint64_t round,
                                        std::span<const fl::Upload> uploads) {
  obs::RoundTrace trace;
  trace.round = round;
  trace.workers.reserve(uploads.size());
  for (const auto& upload : uploads) {
    obs::WorkerTrace wt;
    wt.id = upload.worker;
    wt.arrived = upload.arrived;
    wt.accepted = upload.arrived;  // FedAvg accepts whatever arrived
    wt.uncertain = !upload.arrived;
    wt.detection_score = std::numeric_limits<double>::quiet_NaN();
    trace.workers.push_back(wt);
  }
  return trace;
}

}  // namespace fifl::core
