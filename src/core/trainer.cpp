#include "core/trainer.hpp"

#include <stdexcept>

namespace fifl::core {

FederatedTrainer::FederatedTrainer(fl::Simulator* simulator, FiflEngine* engine,
                                   TrainerConfig config)
    : simulator_(simulator), engine_(engine), config_(config),
      participation_rng_(config.participation_seed) {
  if (!simulator_) throw std::invalid_argument("FederatedTrainer: null simulator");
  if (config.participation <= 0.0 || config.participation > 1.0) {
    throw std::invalid_argument("FederatedTrainer: participation outside (0,1]");
  }
  if (engine_ && engine_->workers() != simulator_->worker_count()) {
    throw std::invalid_argument(
        "FederatedTrainer: engine/simulator worker count mismatch");
  }
}

RoundRecord FederatedTrainer::execute_round() {
  RoundRecord record;
  std::vector<fl::Upload> uploads;
  if (config_.participation >= 1.0) {
    uploads = simulator_->collect_uploads();
  } else {
    const auto mask =
        simulator_->sample_participants(config_.participation, participation_rng_);
    uploads = simulator_->collect_uploads(mask);
  }
  record.round = simulator_->round() - 1;
  if (engine_) {
    const RoundReport report = engine_->process_round(uploads);
    simulator_->apply_round(uploads, report.detection.accepted);
    record.fairness = report.fairness;
    record.degraded = report.degraded;
    for (std::size_t i = 0; i < uploads.size(); ++i) {
      if (report.detection.uncertain[i]) {
        ++record.uncertain;
      } else if (report.detection.accepted[i]) {
        ++record.accepted;
      } else {
        ++record.rejected;
      }
    }
  } else {
    simulator_->apply_round(uploads);
    for (const auto& upload : uploads) {
      if (upload.arrived) {
        ++record.accepted;
      } else {
        ++record.uncertain;
      }
    }
  }
  return record;
}

std::size_t FederatedTrainer::run(std::size_t rounds, const Observer& observer) {
  std::size_t executed = 0;
  for (; executed < rounds; ++executed) {
    RoundRecord record = execute_round();
    const bool eval_point =
        config_.eval_every != 0 &&
        (executed + 1) % config_.eval_every == 0;
    if (eval_point || executed + 1 == rounds) {
      last_eval_ = simulator_->evaluate();
      record.evaluated = true;
      record.accuracy = last_eval_->accuracy;
      record.loss = last_eval_->loss;
    }
    history_.push_back(record);
    if (observer) observer(history_.back());
    if (config_.stop_on_crash && simulator_->model_crashed()) {
      crashed_ = true;
      ++executed;
      break;
    }
    if (record.evaluated && config_.target_accuracy > 0.0 &&
        record.accuracy >= config_.target_accuracy) {
      ++executed;
      break;
    }
  }
  return executed;
}

fl::Evaluation FederatedTrainer::final_evaluation() {
  if (!last_eval_) last_eval_ = simulator_->evaluate();
  return *last_eval_;
}

util::Table FederatedTrainer::history_table() const {
  util::Table table({"round", "accuracy", "loss", "accepted", "rejected",
                     "uncertain", "fairness"});
  for (const auto& record : history_) {
    if (!record.evaluated) continue;
    table.add_row({std::to_string(record.round),
                   util::format_double(record.accuracy, 3),
                   util::format_double(record.loss, 3),
                   std::to_string(record.accepted),
                   std::to_string(record.rejected),
                   std::to_string(record.uncertain),
                   util::format_double(record.fairness, 3)});
  }
  return table;
}

}  // namespace fifl::core
