#include "core/trainer.hpp"

#include <stdexcept>

#include "core/round_common.hpp"
#include "util/logging.hpp"

namespace fifl::core {

FederatedTrainer::FederatedTrainer(fl::Simulator* simulator, FiflEngine* engine,
                                   TrainerConfig config)
    : simulator_(simulator), engine_(engine), config_(config),
      participation_rng_(config.participation_seed),
      trace_recorder_(&obs::RoundTraceRecorder::global()) {
  if (!simulator_) throw std::invalid_argument("FederatedTrainer: null simulator");
  if (config.participation <= 0.0 || config.participation > 1.0) {
    throw std::invalid_argument("FederatedTrainer: participation outside (0,1]");
  }
  if (engine_ && engine_->workers() != simulator_->worker_count()) {
    throw std::invalid_argument(
        "FederatedTrainer: engine/simulator worker count mismatch");
  }
}

RoundRecord FederatedTrainer::execute_round() {
  RoundRecord record;
  std::vector<fl::Upload> uploads;
  if (config_.participation >= 1.0) {
    uploads = simulator_->collect_uploads();
  } else {
    const auto mask =
        simulator_->sample_participants(config_.participation, participation_rng_);
    uploads = simulator_->collect_uploads(mask);
  }
  record.round = simulator_->round() - 1;
  const bool tracing = trace_recorder_ && trace_recorder_->enabled();
  const fl::SimPhaseTimes& sim_times = simulator_->last_phase_times();
  if (engine_) {
    const RoundReport report = engine_->process_round(uploads);
    simulator_->apply_round(uploads, report.detection.accepted);
    summarize_report(report, uploads, record);
    if (tracing) {
      pending_trace_ = make_round_trace(record.round, report, uploads);
      pending_trace_.phases.local_train_ms = sim_times.local_train_ms;
      pending_trace_.phases.channel_ms = sim_times.channel_ms;
      pending_trace_.phases.detect_ms = report.detect_ms;
      pending_trace_.phases.aggregate_ms = report.aggregate_ms;
      pending_trace_.phases.ledger_ms = report.ledger_ms;
    }
    if (report_observer_) report_observer_(report, uploads);
  } else {
    simulator_->apply_round(uploads);
    for (const auto& upload : uploads) {
      if (upload.arrived) {
        ++record.accepted;
      } else {
        ++record.uncertain;
      }
    }
    if (tracing) {
      pending_trace_ = make_fedavg_round_trace(record.round, uploads);
      pending_trace_.phases.local_train_ms = sim_times.local_train_ms;
      pending_trace_.phases.channel_ms = sim_times.channel_ms;
    }
  }
  return record;
}

std::size_t FederatedTrainer::run(std::size_t rounds, const Observer& observer) {
  util::log_info() << "trainer: " << rounds << " rounds, "
                   << simulator_->worker_count() << " workers, "
                   << (engine_ ? "FIFL" : "FedAvg") << " aggregation";
  std::size_t executed = 0;
  for (; executed < rounds; ++executed) {
    RoundRecord record = execute_round();
    util::log_debug() << "round " << record.round << ": accepted "
                      << record.accepted << " rejected " << record.rejected
                      << " uncertain " << record.uncertain;
    const bool eval_point =
        config_.eval_every != 0 &&
        (executed + 1) % config_.eval_every == 0;
    if (eval_point || executed + 1 == rounds) {
      last_eval_ = simulator_->evaluate();
      record.evaluated = true;
      record.accuracy = last_eval_->accuracy;
      record.loss = last_eval_->loss;
    }
    if (trace_recorder_ && trace_recorder_->enabled()) {
      pending_trace_.evaluated = record.evaluated;
      pending_trace_.eval_loss = record.loss;
      pending_trace_.eval_accuracy = record.accuracy;
      trace_recorder_->record(pending_trace_);
    }
    history_.push_back(record);
    if (observer) observer(history_.back());
    if (config_.stop_on_crash && simulator_->model_crashed()) {
      util::log_warn() << "trainer: model crashed (non-finite parameters) "
                          "after round " << record.round << ", stopping";
      crashed_ = true;
      ++executed;
      break;
    }
    if (record.evaluated && config_.target_accuracy > 0.0 &&
        record.accuracy >= config_.target_accuracy) {
      ++executed;
      break;
    }
  }
  return executed;
}

fl::Evaluation FederatedTrainer::final_evaluation() {
  if (!last_eval_) last_eval_ = simulator_->evaluate();
  return *last_eval_;
}

util::Table FederatedTrainer::history_table() const {
  util::Table table({"round", "accuracy", "loss", "accepted", "rejected",
                     "uncertain", "fairness"});
  for (const auto& record : history_) {
    if (!record.evaluated) continue;
    table.add_row({std::to_string(record.round),
                   util::format_double(record.accuracy, 3),
                   util::format_double(record.loss, 3),
                   std::to_string(record.accepted),
                   std::to_string(record.rejected),
                   std::to_string(record.uncertain),
                   util::format_double(record.fairness, 3)});
  }
  return table;
}

}  // namespace fifl::core
