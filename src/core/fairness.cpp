#include "core/fairness.hpp"

#include <stdexcept>
#include <vector>

#include "util/stats.hpp"

namespace fifl::core {

double fairness_coefficient(std::span<const double> inputs,
                            std::span<const double> rewards) {
  return util::pearson(inputs, rewards);
}

double fairness_among_contributors(std::span<const double> contributions,
                                   std::span<const double> rewards) {
  if (contributions.size() != rewards.size()) {
    throw std::invalid_argument("fairness_among_contributors: size mismatch");
  }
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    if (contributions[i] > 0.0) {
      xs.push_back(contributions[i]);
      ys.push_back(rewards[i]);
    }
  }
  if (xs.size() < 2) return 1.0;  // degenerate: one contributor is trivially fair
  return util::pearson(xs, ys);
}

}  // namespace fifl::core
