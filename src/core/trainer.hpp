// FederatedTrainer: the high-level loop that wires a fl::Simulator to a
// FiflEngine (or plain FedAvg), with per-round history, evaluation
// cadence, and an observer callback. Benches and applications share this
// instead of re-writing the collect/process/apply dance.
//
// The trainer is also the telemetry join point: each round it assembles
// an obs::RoundTrace (per-worker detection/reputation/contribution/
// reward plus per-phase wall-times from the simulator and engine) and
// hands it to a RoundTraceRecorder — by default the process-global one,
// which streams JSONL when FIFL_TRACE_OUT is set and is free otherwise.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/fifl.hpp"
#include "fl/simulator.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace fifl::core {

struct RoundRecord {
  std::uint64_t round = 0;
  bool evaluated = false;
  double accuracy = 0.0;      // valid iff evaluated
  double loss = 0.0;          // valid iff evaluated
  std::size_t accepted = 0;   // uploads aggregated this round
  std::size_t rejected = 0;
  std::size_t uncertain = 0;  // channel losses
  double fairness = 0.0;      // FIFL only
  bool degraded = false;      // FIFL only: no benchmark available
};

struct TrainerConfig {
  /// Evaluate test accuracy/loss every N rounds (0 = only at the end).
  std::size_t eval_every = 5;
  /// Stop early once test accuracy reaches this level (checked at
  /// evaluation points; <= 0 disables).
  double target_accuracy = 0.0;
  /// Stop immediately if the global model's parameters go non-finite.
  bool stop_on_crash = true;
  /// Fraction of workers sampled per round (FedAvg's client sampling);
  /// 1.0 = full participation. Absent workers surface as uncertain events.
  double participation = 1.0;
  std::uint64_t participation_seed = 0x9a37;
};

class FederatedTrainer {
 public:
  /// `engine == nullptr` trains plain FedAvg (accept everything arrived).
  FederatedTrainer(fl::Simulator* simulator, FiflEngine* engine,
                   TrainerConfig config = {});

  using Observer = std::function<void(const RoundRecord&)>;
  /// Fired after every FIFL round with the engine's full report and the
  /// round's uploads — the hook for ablation twins and custom series
  /// collection. Never fired in FedAvg mode (no engine, no report).
  using ReportObserver =
      std::function<void(const RoundReport&, std::span<const fl::Upload>)>;

  /// Runs up to `rounds` rounds; returns the number actually executed
  /// (early stop on target accuracy or crash).
  std::size_t run(std::size_t rounds, const Observer& observer = nullptr);

  void set_report_observer(ReportObserver observer) {
    report_observer_ = std::move(observer);
  }

  /// Where per-round telemetry goes. Defaults to the process-global
  /// recorder (enabled via FIFL_TRACE_OUT); pass a local recorder to
  /// capture traces in memory, or nullptr to disable entirely. When the
  /// recorder is disabled the trace path costs one branch per round.
  void set_trace_recorder(obs::RoundTraceRecorder* recorder) {
    trace_recorder_ = recorder;
  }

  const std::vector<RoundRecord>& history() const noexcept { return history_; }
  /// Last evaluation taken (runs one if none exists yet).
  fl::Evaluation final_evaluation();
  bool crashed() const noexcept { return crashed_; }

  /// Rounds × (round, acc, loss, accepted, rejected, fairness) table of
  /// the evaluated rounds.
  util::Table history_table() const;

 private:
  RoundRecord execute_round();

  fl::Simulator* simulator_;
  FiflEngine* engine_;  // may be null (FedAvg)
  TrainerConfig config_;
  util::Rng participation_rng_;
  std::vector<RoundRecord> history_;
  std::optional<fl::Evaluation> last_eval_;
  bool crashed_ = false;
  ReportObserver report_observer_;
  obs::RoundTraceRecorder* trace_recorder_;
  /// Trace built during execute_round(); run() fills in the evaluation
  /// fields (taken after the round) and commits it to the recorder.
  obs::RoundTrace pending_trace_;
};

}  // namespace fifl::core
