// Round-summary helpers shared by core::FederatedTrainer (in-process) and
// net::ServerNode (networked): both consume a FiflEngine RoundReport and
// must produce identical accept/reject/uncertain tallies and identical
// per-worker trace rows. Factoring this out is what keeps the two
// runtimes on one assessment path — a divergence here would silently
// break the simulator/cluster equivalence guarantee.
#pragma once

#include <span>

#include "core/fifl.hpp"
#include "core/trainer.hpp"
#include "obs/trace.hpp"

namespace fifl::core {

/// Fills the outcome fields of `record` (accepted/rejected/uncertain,
/// fairness, degraded) from an engine report.
void summarize_report(const RoundReport& report,
                      std::span<const fl::Upload> uploads,
                      RoundRecord& record);

/// Per-worker trace rows for a FIFL round. Phase timings and evaluation
/// fields are left to the caller (they differ between runtimes).
obs::RoundTrace make_round_trace(std::uint64_t round, const RoundReport& report,
                                 std::span<const fl::Upload> uploads);

/// FedAvg variant: no engine report, accept == arrived.
obs::RoundTrace make_fedavg_round_trace(std::uint64_t round,
                                        std::span<const fl::Upload> uploads);

}  // namespace fifl::core
