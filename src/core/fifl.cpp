#include "core/fifl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/scoped_timer.hpp"
#include "util/logging.hpp"

namespace fifl::core {

FiflEngine::FiflEngine(FiflConfig config, std::size_t workers,
                       std::size_t gradient_size)
    : config_(config),
      workers_(workers),
      plan_(gradient_size, config.servers),
      detection_(config.detection),
      reputation_(config.reputation),
      contribution_(config.contribution),
      incentive_(config.incentive),
      selector_(config.servers),
      registry_(config.key_seed),
      ledger_(&registry_) {
  if (workers == 0) throw std::invalid_argument("FiflEngine: zero workers");
  if (config.servers > workers) {
    throw std::invalid_argument("FiflEngine: more servers than workers");
  }
  reputation_.resize(workers);
  for (std::size_t i = 0; i <= workers; ++i) {
    registry_.register_node(static_cast<chain::NodeId>(i));
  }
  members_.resize(config.servers);
  for (std::size_t j = 0; j < config.servers; ++j) {
    members_[j] = static_cast<chain::NodeId>(j);
  }

  auto& metrics = obs::MetricsRegistry::global();
  detect_hist_ = &metrics.histogram("fifl.detect_ms");
  aggregate_hist_ = &metrics.histogram("fifl.aggregate_ms");
  ledger_hist_ = &metrics.histogram("fifl.ledger_ms");
  rounds_counter_ = &metrics.counter("fifl.rounds");
  accepted_counter_ = &metrics.counter("fifl.uploads_accepted");
  rejected_counter_ = &metrics.counter("fifl.uploads_rejected");
  uncertain_counter_ = &metrics.counter("fifl.uploads_uncertain");
  degraded_counter_ = &metrics.counter("fifl.degraded_rounds");
}

void FiflEngine::initialize_servers(
    std::span<const double> verification_scores) {
  if (verification_scores.size() != workers_) {
    throw std::invalid_argument("initialize_servers: score count mismatch");
  }
  members_ = selector_.select_initial(verification_scores);
  if (config_.record_to_ledger) {
    for (chain::NodeId member : members_) {
      ledger_.append(chain::RecordKind::kServerSelection, round_, member,
                     publisher(), 1.0);
    }
  }
}

std::vector<chain::NodeId> FiflEngine::effective_members(
    std::span<const fl::Upload> uploads) const {
  auto arrived = [&uploads](chain::NodeId id) {
    for (const auto& u : uploads) {
      if (u.worker == id) return u.arrived;
    }
    return false;
  };
  std::vector<chain::NodeId> effective = members_;
  for (auto& member : effective) {
    if (arrived(member)) continue;
    // Substitute: highest-reputation arrived worker not already serving.
    chain::NodeId best = member;
    double best_rep = -std::numeric_limits<double>::infinity();
    for (const auto& u : uploads) {
      if (!u.arrived) continue;
      if (std::find(effective.begin(), effective.end(), u.worker) !=
          effective.end()) {
        continue;
      }
      const double rep = reputation_.reputation(u.worker);
      if (rep > best_rep) {
        best_rep = rep;
        best = u.worker;
      }
    }
    if (best == member) {
      throw std::runtime_error(
          "FiflEngine: no arrived upload available to serve as benchmark");
    }
    member = best;
  }
  return effective;
}

void FiflEngine::catch_up_block(std::span<const chain::AuditRecord> records) {
  if (records.empty()) {
    throw std::invalid_argument("catch_up_block: empty block");
  }
  if (!config_.record_to_ledger) {
    throw std::logic_error("catch_up_block: engine is not recording");
  }
  if (records.front().round != round_) {
    throw std::runtime_error(
        "catch_up_block: block is for round " +
        std::to_string(records.front().round) + ", engine expects round " +
        std::to_string(round_));
  }

  // Degraded rounds seal detection-only blocks (value -1, no kReputation
  // rows) and skip re-selection, exactly like process_round's early return.
  bool has_reputation = false;
  std::vector<double> rewards(workers_, 0.0);
  for (const auto& rec : records) {
    switch (rec.kind) {
      case chain::RecordKind::kDetection: {
        const Event event = rec.value > 0.5    ? Event::kPositive
                            : rec.value < -0.5 ? Event::kUncertain
                                               : Event::kNegative;
        reputation_.record(rec.subject, event);
        break;
      }
      case chain::RecordKind::kReputation:
        has_reputation = true;
        break;
      case chain::RecordKind::kReward:
        if (rec.subject < workers_) rewards[rec.subject] = rec.value;
        break;
      default:
        break;
    }
  }
  for (const auto& rec : records) {
    if (rec.kind != chain::RecordKind::kReputation) continue;
    if (reputation_.reputation(rec.subject) != rec.value) {
      throw std::runtime_error(
          "catch_up_block: replayed reputation for worker " +
          std::to_string(rec.subject) +
          " diverges from the recorded value (forked history)");
    }
  }
  cumulative_.add_round(rewards);

  for (const auto& rec : records) {
    ledger_.append(rec.kind, rec.round, rec.subject, rec.executor, rec.value);
  }
  ledger_.seal_block();

  if (has_reputation && config_.reselect_servers) {
    members_ = selector_.select_by_reputation(reputation_, workers_);
  }
  ++round_;
}

RoundReport FiflEngine::process_round(std::span<const fl::Upload> uploads) {
  if (uploads.size() != workers_) {
    throw std::invalid_argument("FiflEngine: expected one upload per worker");
  }
  RoundReport report;
  report.round = round_;
  rounds_counter_->inc();

  // --- 1. attack detection against the server benchmark slices -----------
  // (benchmark assembly counts as detection time: it is the cost of
  // being able to score at all).
  obs::ScopedTimer detect_timer(*detect_hist_);
  std::vector<chain::NodeId> bench_members;
  try {
    bench_members = effective_members(uploads);
  } catch (const std::runtime_error&) {
    // No usable benchmark this round (e.g. the channel dropped every
    // candidate): degrade gracefully — everything is an uncertain event,
    // nothing is aggregated or paid.
    report.detect_ms = detect_timer.stop();
    report.degraded = true;
    util::log_warn() << "fifl: no usable benchmark gradient this round, "
                        "degrading (all uploads marked uncertain)";
    degraded_counter_->inc();
    report.servers = members_;
    const std::size_t n = uploads.size();
    uncertain_counter_->inc(n);
    report.detection.scores.assign(n, std::numeric_limits<double>::quiet_NaN());
    report.detection.accepted.assign(n, 0);
    report.detection.uncertain.assign(n, 1);
    report.detection.server_scores.assign(
        plan_.servers(), std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
      reputation_.record(static_cast<chain::NodeId>(i), Event::kUncertain);
    }
    report.reputations = reputation_.all_reputations();
    report.reputations.resize(workers_);
    report.global_gradient = fl::Gradient(plan_.gradient_size());
    report.contribution.distances.assign(
        n, std::numeric_limits<double>::quiet_NaN());
    report.contribution.contributions.assign(n, 0.0);
    report.rewards.assign(n, 0.0);
    cumulative_.add_round(report.rewards);
    if (config_.record_to_ledger) {
      obs::ScopedTimer ledger_timer(*ledger_hist_);
      for (std::size_t i = 0; i < n; ++i) {
        ledger_.append(chain::RecordKind::kDetection, round_,
                       static_cast<chain::NodeId>(i), publisher(), -1.0);
      }
      ledger_.seal_block();
      report.ledger_ms = ledger_timer.stop();
    }
    ++round_;
    return report;
  }
  fl::ServerCluster cluster(bench_members, plan_);
  report.servers = bench_members;
  report.detection = detection_.run(uploads, cluster);
  report.detect_ms = detect_timer.stop();

  // --- 2. reputation events ----------------------------------------------
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    const auto id = static_cast<chain::NodeId>(i);
    if (report.detection.uncertain[i]) {
      uncertain_counter_->inc();
      reputation_.record(id, Event::kUncertain);
    } else {
      (report.detection.accepted[i] ? accepted_counter_ : rejected_counter_)
          ->inc();
      reputation_.record(id, report.detection.accepted[i] ? Event::kPositive
                                                          : Event::kNegative);
    }
  }
  report.reputations = reputation_.all_reputations();
  report.reputations.resize(workers_);

  // --- 3. aggregation over accepted uploads (Eq. 2 with r_i mask) --------
  obs::ScopedTimer aggregate_timer(*aggregate_hist_);
  report.global_gradient = fl::Gradient(plan_.gradient_size());
  double total_weight = 0.0;
  // order: worker upload index ascending (fixed engine-input order)
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    if (!uploads[i].arrived || !report.detection.accepted[i]) continue;
    total_weight += static_cast<double>(uploads[i].samples);
  }
  if (total_weight > 0.0) {
    for (std::size_t i = 0; i < uploads.size(); ++i) {
      if (!uploads[i].arrived || !report.detection.accepted[i]) continue;
      report.global_gradient.axpy(
          static_cast<float>(static_cast<double>(uploads[i].samples) / total_weight),
          uploads[i].gradient);
    }
  }

  // --- 4. contribution (Eq. 13-14) ----------------------------------------
  report.contribution = contribution_.run(uploads, report.global_gradient);

  // --- 5. incentive (Eq. 15) ----------------------------------------------
  report.rewards =
      incentive_.rewards(report.reputations, report.contribution.contributions);
  cumulative_.add_round(report.rewards);
  report.fairness = fairness_among_contributors(
      report.contribution.contributions, report.rewards);
  report.aggregate_ms = aggregate_timer.stop();

  // --- 6. audit trail ------------------------------------------------------
  if (config_.record_to_ledger) {
    obs::ScopedTimer ledger_timer(*ledger_hist_);
    const chain::NodeId leader = bench_members.front();
    for (std::size_t i = 0; i < uploads.size(); ++i) {
      const auto id = static_cast<chain::NodeId>(i);
      // Detection outcome: 1 accepted, 0 rejected, -1 uncertain.
      const double outcome = report.detection.uncertain[i]
                                 ? -1.0
                                 : static_cast<double>(report.detection.accepted[i]);
      ledger_.append(chain::RecordKind::kDetection, round_, id, leader, outcome);
      ledger_.append(chain::RecordKind::kReputation, round_, id, leader,
                     report.reputations[i]);
      ledger_.append(chain::RecordKind::kContribution, round_, id, leader,
                     report.contribution.contributions[i]);
      ledger_.append(chain::RecordKind::kReward, round_, id, publisher(),
                     report.rewards[i]);
    }
    ledger_.seal_block();
    report.ledger_ms = ledger_timer.stop();
  }

  // --- 7. reputation-based server re-selection for the next round --------
  if (config_.reselect_servers) {
    members_ = selector_.select_by_reputation(reputation_, workers_);
  }
  ++round_;
  return report;
}

}  // namespace fifl::core
