// Fairness coefficient (Sec. 4.4, Eq. 16-17): the Pearson correlation
// between what workers put in (contribution / reputation) and what they
// get out (reward). Theorem 2 says this is exactly 1 for honest workers
// under FIFL — verified by our property tests and the Fig. 4 bench.
#pragma once

#include <span>

namespace fifl::core {

/// C_s in Eq. 16 over any (input, reward) pairing; in [-1, 1].
double fairness_coefficient(std::span<const double> inputs,
                            std::span<const double> rewards);

/// Fairness restricted to workers with positive contribution (the paper's
/// honest-worker setting of Theorem 2).
double fairness_among_contributors(std::span<const double> contributions,
                                   std::span<const double> rewards);

}  // namespace fifl::core
