// FiflEngine: the full per-round FIFL pipeline of Fig. 2 wired together.
//
//   uploads ──► attack detection (Sec. 4.1) ──► reputation update (4.2)
//        └──► accepted-only aggregation (Eq. 2+7) ──► contribution (4.3)
//                                 └──► incentive  I_i = R_i·C_i/ΣC⁺ (4.4)
// with every intermediate value signed and sealed into the audit ledger
// and the server cluster re-selected by reputation each round (4.5).
//
// The engine is deliberately independent of fl::Simulator: it consumes a
// span of Uploads and returns the accept mask + aggregated gradient, so
// callers can drive it from the simulator, from tests with synthetic
// gradients, or from the market model.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "chain/ledger.hpp"
#include "core/audit.hpp"
#include "core/contribution.hpp"
#include "core/detection.hpp"
#include "core/fairness.hpp"
#include "core/incentive.hpp"
#include "core/reputation.hpp"
#include "fl/topology.hpp"
#include "obs/metrics.hpp"

namespace fifl::core {

struct FiflConfig {
  DetectionConfig detection;
  ReputationConfig reputation;
  ContributionConfig contribution;
  IncentiveConfig incentive;
  std::size_t servers = 2;  // M (1 = centralized, N = decentralized)
  bool reselect_servers = true;
  bool record_to_ledger = true;
  std::uint64_t key_seed = 0x51f7u;
};

struct RoundReport {
  std::uint64_t round = 0;
  std::vector<chain::NodeId> servers;  // cluster that served this round
  /// True when no benchmark could be assembled (e.g. every candidate
  /// upload was lost): detection was impossible, all events recorded as
  /// uncertain, nothing aggregated, nobody paid.
  bool degraded = false;
  DetectionResult detection;
  std::vector<double> reputations;     // R_i after this round's events
  fl::Gradient global_gradient;        // G̃ over accepted uploads
  ContributionResult contribution;
  std::vector<double> rewards;         // I_i (negative = punishment)
  double fairness = 0.0;               // C_s among positive contributors
  /// Wall-times of this round's pipeline phases (also recorded into the
  /// global metrics registry as "fifl.detect_ms" / "fifl.aggregate_ms" /
  /// "fifl.ledger_ms" histograms). aggregate_ms spans aggregation,
  /// contribution, and incentive — the post-detection arithmetic.
  double detect_ms = 0.0;
  double aggregate_ms = 0.0;
  double ledger_ms = 0.0;
};

class FiflEngine {
 public:
  FiflEngine(FiflConfig config, std::size_t workers, std::size_t gradient_size);

  std::size_t workers() const noexcept { return workers_; }
  const FiflConfig& config() const noexcept { return config_; }
  const fl::SlicePlan& plan() const noexcept { return plan_; }
  const std::vector<chain::NodeId>& server_members() const noexcept {
    return members_;
  }
  /// The task publisher's node id (workers_, one past the last worker).
  chain::NodeId publisher() const noexcept {
    return static_cast<chain::NodeId>(workers_);
  }

  /// Initial server selection from pre-training verification scores
  /// (Sec. 4.5). Without this call the cluster starts as workers 0..M-1.
  void initialize_servers(std::span<const double> verification_scores);

  /// Runs the full pipeline on one round of uploads (uploads.size() must
  /// equal workers()).
  RoundReport process_round(std::span<const fl::Upload> uploads);

  /// Rejoin-by-replay: re-applies one committed block's records to rebuild
  /// the state a live replica would hold — reputation events, cumulative
  /// rewards, the sealed block itself (re-appended through the local
  /// KeyRegistry, so deterministic signatures make the block byte-identical
  /// to the original), and the next round's server re-selection. The block
  /// must be the engine's next round; recorded kReputation values are
  /// cross-checked against the replayed state and any divergence throws
  /// std::runtime_error (the sync peer served a forked history).
  void catch_up_block(std::span<const chain::AuditRecord> records);

  /// Rounds processed so far (== ledger block count when recording).
  std::uint64_t round() const noexcept { return round_; }

  ReputationModule& reputation() noexcept { return reputation_; }
  const ReputationModule& reputation() const noexcept { return reputation_; }
  const chain::Ledger& ledger() const noexcept { return ledger_; }
  const chain::KeyRegistry& registry() const noexcept { return registry_; }
  ServerSelector& selector() noexcept { return selector_; }
  const CumulativeLedger& cumulative() const noexcept { return cumulative_; }
  DetectionModule& detection() noexcept { return detection_; }

 private:
  /// Benchmark slice providers for this round: the cluster members, with
  /// any member whose upload is missing/dropped replaced by the
  /// highest-reputation arrived worker (keeps detection alive under
  /// channel loss).
  std::vector<chain::NodeId> effective_members(
      std::span<const fl::Upload> uploads) const;

  FiflConfig config_;
  std::size_t workers_;
  fl::SlicePlan plan_;
  std::vector<chain::NodeId> members_;
  DetectionModule detection_;
  ReputationModule reputation_;
  ContributionModule contribution_;
  IncentiveModule incentive_;
  ServerSelector selector_;
  chain::KeyRegistry registry_;
  chain::Ledger ledger_;
  CumulativeLedger cumulative_;
  std::uint64_t round_ = 0;
  // Metrics handles resolved once in the constructor.
  obs::Histogram* detect_hist_ = nullptr;
  obs::Histogram* aggregate_hist_ = nullptr;
  obs::Histogram* ledger_hist_ = nullptr;
  obs::Counter* rounds_counter_ = nullptr;
  obs::Counter* accepted_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* uncertain_counter_ = nullptr;
  obs::Counter* degraded_counter_ = nullptr;
};

}  // namespace fifl::core
