// Byzantine-robust aggregation baselines (extension module).
//
// The paper positions FIFL's detection module against the Byzantine-
// tolerant literature it cites — Krum [Blanchard et al., NIPS'17],
// coordinate-wise median / trimmed mean [Yin et al.-style], and the
// loss-based Zeno [Xie et al.]. We implement them behind one interface so
// the ablation bench can race them against FIFL detection on identical
// uploads: same inputs, who keeps the model alive, at what cost, and —
// unlike FIFL — none of them yields per-worker assessments an incentive
// mechanism could pay on.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/detection.hpp"
#include "fl/worker.hpp"

namespace fifl::core {

class RobustAggregator {
 public:
  virtual ~RobustAggregator() = default;
  virtual std::string name() const = 0;

  /// Robust estimate of the true gradient from one round of uploads.
  /// Uploads that did not arrive are ignored. Throws std::invalid_argument
  /// if no usable upload exists.
  virtual fl::Gradient aggregate(std::span<const fl::Upload> uploads) const = 0;
};

using AggregatorPtr = std::unique_ptr<RobustAggregator>;

/// Plain FedAvg (Eq. 2): sample-count-weighted mean. The undefended
/// baseline.
class FedAvgAggregator final : public RobustAggregator {
 public:
  std::string name() const override { return "FedAvg"; }
  fl::Gradient aggregate(std::span<const fl::Upload> uploads) const override;
};

/// Krum / multi-Krum: each gradient is scored by the sum of its squared
/// distances to its n−f−2 nearest neighbours; the m lowest-scoring
/// gradients are averaged (m = 1 is classic Krum).
class KrumAggregator final : public RobustAggregator {
 public:
  /// `f` = assumed number of Byzantine workers; `m` = gradients kept.
  KrumAggregator(std::size_t f, std::size_t m = 1);
  std::string name() const override;
  fl::Gradient aggregate(std::span<const fl::Upload> uploads) const override;

  /// Krum scores (sum of the n−f−2 smallest squared distances) per
  /// arrived upload index — exposed for tests.
  std::vector<double> scores(std::span<const fl::Upload> uploads) const;

 private:
  std::size_t f_;
  std::size_t m_;
};

/// Coordinate-wise median of the arrived gradients.
class MedianAggregator final : public RobustAggregator {
 public:
  std::string name() const override { return "CoordMedian"; }
  fl::Gradient aggregate(std::span<const fl::Upload> uploads) const override;
};

/// Coordinate-wise trimmed mean: drop the `trim` largest and smallest
/// values per coordinate, average the rest.
class TrimmedMeanAggregator final : public RobustAggregator {
 public:
  explicit TrimmedMeanAggregator(std::size_t trim);
  std::string name() const override;
  fl::Gradient aggregate(std::span<const fl::Upload> uploads) const override;

 private:
  std::size_t trim_;
};

/// FIFL's detection module as an aggregator: score against benchmark
/// slices from the given server members, reject below-threshold uploads,
/// weighted-average the rest (Eq. 2 + Eq. 7). The one defense here that
/// also produces per-worker accept/reject outcomes for the incentive
/// layer.
class FiflDetectionAggregator final : public RobustAggregator {
 public:
  FiflDetectionAggregator(DetectionConfig config,
                          std::vector<chain::NodeId> servers);
  std::string name() const override { return "FIFL-detect"; }
  fl::Gradient aggregate(std::span<const fl::Upload> uploads) const override;

 private:
  DetectionConfig config_;
  std::vector<chain::NodeId> servers_;
};

/// Norm clipping: rescale every upload whose norm exceeds the median
/// upload norm down to it, then FedAvg. The cheapest robust baseline —
/// it bounds (but does not remove) a flipped gradient's influence.
class NormClipAggregator final : public RobustAggregator {
 public:
  std::string name() const override { return "NormClip"; }
  fl::Gradient aggregate(std::span<const fl::Upload> uploads) const override;
};

/// Zeno [Xie et al. '18] — the paper's Eq. 5 reference point: score each
/// upload by the exact validation-loss decrease it would cause,
/// S = L(θ) − L(θ − G_i) − ρ‖G_i‖², drop the `b` lowest-scoring uploads,
/// average the rest. Needs the current parameters and a loss oracle; the
/// expensive inference per worker per round is exactly what FIFL's Taylor
/// approximation removes (micro_detection_cost quantifies the gap).
class ZenoAggregator final : public RobustAggregator {
 public:
  using LossOracle = std::function<double(std::span<const float> params)>;

  /// `b` = number of suspicious uploads removed each round; `rho` is the
  /// regularisation weight on ‖G_i‖².
  ZenoAggregator(std::size_t b, double rho, LossOracle loss);

  std::string name() const override;
  fl::Gradient aggregate(std::span<const fl::Upload> uploads) const override;

  /// Must be called with the current global parameters before aggregate().
  void set_parameters(std::vector<float> params);

  /// Zeno scores per arrived upload (exposed for tests/benches).
  std::vector<double> scores(std::span<const fl::Upload> uploads) const;

 private:
  std::size_t b_;
  double rho_;
  LossOracle loss_;
  std::vector<float> params_;
};

/// All defenses configured for a federation of `workers` with up to `f`
/// Byzantine members (FedAvg first, FIFL last).
std::vector<AggregatorPtr> standard_defenses(std::size_t workers, std::size_t f,
                                             DetectionConfig fifl_config = {});

}  // namespace fifl::core
