// Contribution module (Sec. 4.3): a worker's utility this round is
// measured by how close its gradient is to the aggregated global gradient,
//   b_i = Dis(G̃, G_i) = Σ_j ‖g̃^j − g_i^j‖²  (Eq. 13, slice-additive),
//   C_i = 1 − b_i / b_h                      (Eq. 14),
// where the anchor b_h is either Dis(G̃, 0) = ‖G̃‖² (a zero gradient has
// zero utility) or the distance of a designated reference worker — the
// paper's free-rider barrier: anyone no better than the reference earns
// nothing or is punished.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "fl/topology.hpp"

namespace fifl::core {

enum class Anchor {
  kZeroGradient,     // b_h = ‖G̃‖²
  kReferenceWorker,  // b_h = Dis(G̃, G_ref)
};

struct ContributionConfig {
  Anchor anchor = Anchor::kZeroGradient;
  /// Worker index used when anchor == kReferenceWorker.
  std::size_t reference_worker = 0;
};

struct ContributionResult {
  std::vector<double> distances;      // b_i; NaN for absent uploads
  double threshold = 0.0;             // b_h
  std::vector<double> contributions;  // C_i; 0 for absent uploads
};

class ContributionModule {
 public:
  explicit ContributionModule(ContributionConfig config) : config_(config) {}

  const ContributionConfig& config() const noexcept { return config_; }

  /// Computes b_i and C_i for every upload against the global gradient.
  /// Uploads that did not arrive get distance NaN and contribution 0.
  ContributionResult run(std::span<const fl::Upload> uploads,
                         const fl::Gradient& global_gradient) const;

  /// Slice-wise distance Σ_j Dis(g̃^j, g_i^j); equals the full squared
  /// distance because slices partition the vector — exposed for tests.
  static double sliced_distance(const fl::Gradient& a, const fl::Gradient& b,
                                const fl::SlicePlan& plan);

 private:
  ContributionConfig config_;
};

}  // namespace fifl::core
