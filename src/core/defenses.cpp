#include "core/defenses.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "fl/topology.hpp"
#include "tensor/ops.hpp"
#include "util/parallel_for.hpp"

namespace fifl::core {

namespace {
std::vector<const fl::Upload*> arrived_uploads(
    std::span<const fl::Upload> uploads) {
  std::vector<const fl::Upload*> out;
  for (const auto& up : uploads) {
    if (up.arrived) out.push_back(&up);
  }
  if (out.empty()) {
    throw std::invalid_argument("RobustAggregator: no arrived uploads");
  }
  const std::size_t size = out.front()->gradient.size();
  for (const fl::Upload* up : out) {
    if (up->gradient.size() != size) {
      throw std::invalid_argument("RobustAggregator: gradient size mismatch");
    }
  }
  return out;
}
}  // namespace

fl::Gradient FedAvgAggregator::aggregate(
    std::span<const fl::Upload> uploads) const {
  const auto arrived = arrived_uploads(uploads);
  fl::Gradient out(arrived.front()->gradient.size());
  double total = 0.0;
  // order: worker upload index ascending (arrived_uploads preserves it)
  for (const fl::Upload* up : arrived) {
    total += static_cast<double>(up->samples);
  }
  if (total == 0.0) {
    throw std::invalid_argument("FedAvg: zero total sample weight");
  }
  for (const fl::Upload* up : arrived) {
    out.axpy(static_cast<float>(static_cast<double>(up->samples) / total),
             up->gradient);
  }
  return out;
}

KrumAggregator::KrumAggregator(std::size_t f, std::size_t m) : f_(f), m_(m) {
  if (m == 0) throw std::invalid_argument("Krum: m must be >= 1");
}

std::string KrumAggregator::name() const {
  return m_ == 1 ? "Krum(f=" + std::to_string(f_) + ")"
                 : "MultiKrum(f=" + std::to_string(f_) + ",m=" +
                       std::to_string(m_) + ")";
}

std::vector<double> KrumAggregator::scores(
    std::span<const fl::Upload> uploads) const {
  const auto arrived = arrived_uploads(uploads);
  const std::size_t n = arrived.size();
  if (n < f_ + 3) {
    throw std::invalid_argument("Krum: needs n >= f + 3 arrived uploads");
  }
  // Pairwise squared distances (parallel over the upper triangle's rows).
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  util::parallel_for(
      0, n,
      [&](std::size_t i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          const double d = tensor::squared_distance(
              arrived[i]->gradient.flat(), arrived[j]->gradient.flat());
          dist[i][j] = d;
        }
      },
      /*grain=*/1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) dist[i][j] = dist[j][i];
  }

  const std::size_t keep = n - f_ - 2;
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row;
    row.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) row.push_back(dist[i][j]);
    }
    std::nth_element(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                     row.end());
    out[i] = std::accumulate(row.begin(),
                             row.begin() + static_cast<std::ptrdiff_t>(keep), 0.0);
  }
  return out;
}

fl::Gradient KrumAggregator::aggregate(
    std::span<const fl::Upload> uploads) const {
  const auto arrived = arrived_uploads(uploads);
  const auto krum_scores = scores(uploads);
  const std::size_t n = arrived.size();
  const std::size_t m = std::min(m_, n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return krum_scores[a] < krum_scores[b];
  });
  fl::Gradient out(arrived.front()->gradient.size());
  for (std::size_t k = 0; k < m; ++k) {
    out.axpy(1.0f / static_cast<float>(m), arrived[order[k]]->gradient);
  }
  return out;
}

fl::Gradient MedianAggregator::aggregate(
    std::span<const fl::Upload> uploads) const {
  const auto arrived = arrived_uploads(uploads);
  const std::size_t n = arrived.size();
  const std::size_t dims = arrived.front()->gradient.size();
  fl::Gradient out(dims);
  util::parallel_for(
      0, dims,
      [&](std::size_t d) {
        std::vector<float> column(n);
        for (std::size_t i = 0; i < n; ++i) {
          column[i] = arrived[i]->gradient[d];
        }
        const std::size_t mid = n / 2;
        std::nth_element(column.begin(),
                         column.begin() + static_cast<std::ptrdiff_t>(mid),
                         column.end());
        float value = column[mid];
        if (n % 2 == 0) {
          const float lo = *std::max_element(
              column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid));
          value = 0.5f * (lo + value);
        }
        out[d] = value;
      },
      /*grain=*/512);
  return out;
}

TrimmedMeanAggregator::TrimmedMeanAggregator(std::size_t trim) : trim_(trim) {}

std::string TrimmedMeanAggregator::name() const {
  return "TrimmedMean(k=" + std::to_string(trim_) + ")";
}

fl::Gradient TrimmedMeanAggregator::aggregate(
    std::span<const fl::Upload> uploads) const {
  const auto arrived = arrived_uploads(uploads);
  const std::size_t n = arrived.size();
  if (n <= 2 * trim_) {
    throw std::invalid_argument("TrimmedMean: n must exceed 2*trim");
  }
  const std::size_t dims = arrived.front()->gradient.size();
  fl::Gradient out(dims);
  util::parallel_for(
      0, dims,
      [&](std::size_t d) {
        std::vector<float> column(n);
        for (std::size_t i = 0; i < n; ++i) {
          column[i] = arrived[i]->gradient[d];
        }
        std::sort(column.begin(), column.end());
        double acc = 0.0;
        for (std::size_t i = trim_; i < n - trim_; ++i) {
          acc += static_cast<double>(column[i]);
        }
        out[d] = static_cast<float>(acc / static_cast<double>(n - 2 * trim_));
      },
      /*grain=*/512);
  return out;
}

FiflDetectionAggregator::FiflDetectionAggregator(
    DetectionConfig config, std::vector<chain::NodeId> servers)
    : config_(config), servers_(std::move(servers)) {
  if (servers_.empty()) {
    throw std::invalid_argument("FiflDetectionAggregator: no servers");
  }
}

fl::Gradient FiflDetectionAggregator::aggregate(
    std::span<const fl::Upload> uploads) const {
  const auto arrived = arrived_uploads(uploads);
  const std::size_t dims = arrived.front()->gradient.size();
  fl::SlicePlan plan(dims, servers_.size());
  fl::ServerCluster cluster(servers_, plan);
  DetectionModule detection(config_);
  const DetectionResult result = detection.run(uploads, cluster);

  fl::Gradient out(dims);
  double total = 0.0;
  // order: worker upload index ascending
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    if (!uploads[i].arrived || !result.accepted[i]) continue;
    total += static_cast<double>(uploads[i].samples);
  }
  if (total == 0.0) return out;  // everyone rejected: no-op round
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    if (!uploads[i].arrived || !result.accepted[i]) continue;
    out.axpy(static_cast<float>(static_cast<double>(uploads[i].samples) / total),
             uploads[i].gradient);
  }
  return out;
}

fl::Gradient NormClipAggregator::aggregate(
    std::span<const fl::Upload> uploads) const {
  const auto arrived = arrived_uploads(uploads);
  std::vector<double> norms;
  norms.reserve(arrived.size());
  for (const fl::Upload* up : arrived) norms.push_back(up->gradient.norm());
  std::vector<double> sorted = norms;
  const std::size_t mid = sorted.size() / 2;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(mid),
                   sorted.end());
  const double clip = sorted[mid];

  fl::Gradient out(arrived.front()->gradient.size());
  double total = 0.0;
  // order: worker upload index ascending (arrived_uploads preserves it)
  for (const fl::Upload* up : arrived) {
    total += static_cast<double>(up->samples);
  }
  for (std::size_t i = 0; i < arrived.size(); ++i) {
    const double scale =
        norms[i] > clip && norms[i] > 0.0 ? clip / norms[i] : 1.0;
    out.axpy(static_cast<float>(
                 scale * static_cast<double>(arrived[i]->samples) / total),
             arrived[i]->gradient);
  }
  return out;
}

ZenoAggregator::ZenoAggregator(std::size_t b, double rho, LossOracle loss)
    : b_(b), rho_(rho), loss_(std::move(loss)) {
  if (!loss_) throw std::invalid_argument("Zeno: null loss oracle");
  if (rho < 0.0) throw std::invalid_argument("Zeno: negative rho");
}

std::string ZenoAggregator::name() const {
  return "Zeno(b=" + std::to_string(b_) + ")";
}

void ZenoAggregator::set_parameters(std::vector<float> params) {
  params_ = std::move(params);
}

std::vector<double> ZenoAggregator::scores(
    std::span<const fl::Upload> uploads) const {
  if (params_.empty()) {
    throw std::logic_error("Zeno: set_parameters() before scoring");
  }
  const auto arrived = arrived_uploads(uploads);
  if (arrived.front()->gradient.size() != params_.size()) {
    throw std::invalid_argument("Zeno: parameter/gradient size mismatch");
  }
  const double base_loss = loss_(params_);
  std::vector<double> out(arrived.size());
  std::vector<float> shifted(params_.size());
  for (std::size_t i = 0; i < arrived.size(); ++i) {
    const fl::Gradient& g = arrived[i]->gradient;
    for (std::size_t k = 0; k < shifted.size(); ++k) {
      shifted[k] = params_[k] - g[k];
    }
    out[i] = base_loss - loss_(shifted) - rho_ * g.squared_norm();
  }
  return out;
}

fl::Gradient ZenoAggregator::aggregate(
    std::span<const fl::Upload> uploads) const {
  const auto arrived = arrived_uploads(uploads);
  const auto zeno_scores = scores(uploads);
  const std::size_t n = arrived.size();
  if (n <= b_) throw std::invalid_argument("Zeno: b >= arrived uploads");
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b2) {
    return zeno_scores[a] > zeno_scores[b2];
  });
  const std::size_t keep = n - b_;
  fl::Gradient out(arrived.front()->gradient.size());
  for (std::size_t k = 0; k < keep; ++k) {
    out.axpy(1.0f / static_cast<float>(keep), arrived[order[k]]->gradient);
  }
  return out;
}

std::vector<AggregatorPtr> standard_defenses(std::size_t workers, std::size_t f,
                                             DetectionConfig fifl_config) {
  std::vector<AggregatorPtr> out;
  out.push_back(std::make_unique<FedAvgAggregator>());
  out.push_back(std::make_unique<KrumAggregator>(f, 1));
  out.push_back(std::make_unique<KrumAggregator>(
      f, workers > f + 3 ? workers - f - 2 : 1));
  out.push_back(std::make_unique<MedianAggregator>());
  out.push_back(std::make_unique<TrimmedMeanAggregator>(f));
  out.push_back(std::make_unique<NormClipAggregator>());
  // FIFL benchmarks against the first two workers as servers (callers with
  // reputation state should pass their own selection).
  out.push_back(std::make_unique<FiflDetectionAggregator>(
      fifl_config, std::vector<chain::NodeId>{0, 1}));
  return out;
}

}  // namespace fifl::core
