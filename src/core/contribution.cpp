#include "core/contribution.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace fifl::core {

ContributionResult ContributionModule::run(
    std::span<const fl::Upload> uploads,
    const fl::Gradient& global_gradient) const {
  ContributionResult result;
  const std::size_t n = uploads.size();
  result.distances.assign(n, std::numeric_limits<double>::quiet_NaN());
  result.contributions.assign(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    if (!uploads[i].arrived) continue;
    if (uploads[i].gradient.size() != global_gradient.size()) {
      throw std::invalid_argument("ContributionModule: gradient size mismatch");
    }
    double d = tensor::squared_distance(uploads[i].gradient.flat(),
                                        global_gradient.flat());
    if (!std::isfinite(d)) {
      // A non-finite gradient is infinitely far from the global one.
      d = std::numeric_limits<double>::infinity();
    }
    result.distances[i] = d;
  }

  if (config_.anchor == Anchor::kZeroGradient) {
    result.threshold = global_gradient.squared_norm();  // Dis(G̃, 0)
  } else {
    if (config_.reference_worker >= n) {
      throw std::invalid_argument("ContributionModule: reference worker out of range");
    }
    const double ref = result.distances[config_.reference_worker];
    if (!std::isfinite(ref)) {
      throw std::runtime_error(
          "ContributionModule: reference worker's upload is unusable");
    }
    result.threshold = ref;
  }

  if (result.threshold <= 0.0) {
    // Degenerate round (zero global gradient): nobody contributes.
    for (auto& c : result.contributions) c = 0.0;
    return result;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!uploads[i].arrived) continue;
    if (std::isinf(result.distances[i])) {
      result.contributions[i] = -std::numeric_limits<double>::infinity();
      continue;
    }
    result.contributions[i] = 1.0 - result.distances[i] / result.threshold;
  }
  return result;
}

double ContributionModule::sliced_distance(const fl::Gradient& a,
                                           const fl::Gradient& b,
                                           const fl::SlicePlan& plan) {
  if (a.size() != plan.gradient_size() || b.size() != plan.gradient_size()) {
    throw std::invalid_argument("sliced_distance: size mismatch");
  }
  double total = 0.0;
  // order: server slice index ascending (identical on every replica)
  for (std::size_t j = 0; j < plan.servers(); ++j) {
    const auto sa = plan.slice(a, j);
    const auto sb = plan.slice(b, j);
    total += tensor::squared_distance(sa, sb);
  }
  return total;
}

}  // namespace fifl::core
