// Server-cluster reliability (Sec. 4.5): reputation-based server
// (re-)selection and the blockchain audit that catches manipulating
// servers.
//
// Selection: before training, candidates are ranked by a short
// verification score (validation accuracy of a probe model); during
// training, the task publisher re-selects the M highest-reputation devices
// each round. Audit: a worker who suspects tampering asks the publisher to
// recompute the value; every on-chain record that disagrees exposes its
// signing server, which is then evicted from future selection.
#pragma once

#include <optional>
#include <set>
#include <span>
#include <vector>

#include "chain/ledger.hpp"
#include "core/reputation.hpp"

namespace fifl::core {

class ServerSelector {
 public:
  explicit ServerSelector(std::size_t cluster_size);

  std::size_t cluster_size() const noexcept { return m_; }

  /// Initial selection: the M candidates with the highest verification
  /// scores (e.g. probe-model validation accuracy). Ties break to the
  /// lower id for determinism.
  std::vector<chain::NodeId> select_initial(
      std::span<const double> verification_scores) const;

  /// Per-round re-selection: the M highest-reputation workers that are
  /// not blacklisted.
  std::vector<chain::NodeId> select_by_reputation(
      const ReputationModule& reputation, std::size_t workers) const;

  /// Permanently exclude a node (caught by the audit).
  void blacklist(chain::NodeId node);
  bool is_blacklisted(chain::NodeId node) const;
  const std::set<chain::NodeId>& blacklisted() const noexcept { return banned_; }

 private:
  std::size_t m_;
  std::set<chain::NodeId> banned_;
};

/// The Sec. 4.5 audit flow over a sealed Ledger.
class AuditService {
 public:
  AuditService(const chain::Ledger* ledger, ServerSelector* selector);

  /// Recomputes the expected reputation of `worker` at `round` by
  /// replaying the on-chain detection records through a fresh
  /// ReputationModule, compares it with the on-chain reputation record,
  /// and blacklists every server whose record deviates. Returns the ids
  /// of newly blacklisted servers (empty = chain is consistent).
  std::vector<chain::NodeId> audit_reputation(chain::NodeId worker,
                                              std::uint64_t round,
                                              const ReputationConfig& config,
                                              double tolerance = 1e-9);

  /// Direct comparison audit for any record kind given an independently
  /// recomputed value.
  std::vector<chain::NodeId> audit_value(chain::RecordKind kind,
                                         std::uint64_t round,
                                         chain::NodeId worker,
                                         double recomputed,
                                         double tolerance = 1e-9);

 private:
  const chain::Ledger* ledger_;
  ServerSelector* selector_;
};

}  // namespace fifl::core
