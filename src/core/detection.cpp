#include "core/detection.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace fifl::core {

DetectionResult DetectionModule::run(
    std::span<const fl::Upload> uploads, const fl::SlicePlan& plan,
    const std::vector<std::vector<float>>& benchmark) const {
  if (benchmark.size() != plan.servers()) {
    throw std::invalid_argument("DetectionModule: benchmark slice count mismatch");
  }
  const std::size_t n = uploads.size();
  const std::size_t m = plan.servers();

  DetectionResult result;
  result.scores.assign(n, std::numeric_limits<double>::quiet_NaN());
  result.accepted.assign(n, 0);
  result.uncertain.assign(n, 0);
  result.server_scores.assign(m, std::vector<double>(n, 0.0));

  // Benchmark norm over all slices (for normalisation).
  double bench_norm2 = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    if (benchmark[j].size() != plan.slice_size(j)) {
      throw std::invalid_argument("DetectionModule: benchmark slice size mismatch");
    }
    // order: slice j then element index, both ascending
    for (float v : benchmark[j]) {
      bench_norm2 += static_cast<double>(v) * static_cast<double>(v);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!uploads[i].arrived) {
      result.uncertain[i] = 1;
      continue;
    }
    if (uploads[i].gradient.size() != plan.gradient_size()) {
      throw std::invalid_argument("DetectionModule: upload gradient size mismatch");
    }
    double raw = 0.0;
    bool finite = true;
    // order: server slice j ascending, then element k ascending
    for (std::size_t j = 0; j < m; ++j) {
      const auto slice = plan.slice(uploads[i].gradient, j);
      double sj = 0.0;
      for (std::size_t k = 0; k < slice.size(); ++k) {
        sj += static_cast<double>(benchmark[j][k]) * static_cast<double>(slice[k]);
      }
      result.server_scores[j][i] = sj;
      raw += sj;
      if (!std::isfinite(sj)) finite = false;
    }
    double score = raw;
    if (config_.score == ScoreKind::kCosine) {
      const double norm_i = uploads[i].gradient.norm();
      const double denom = std::sqrt(bench_norm2) * norm_i;
      score = (denom > 0.0 && std::isfinite(denom)) ? raw / denom : 0.0;
    } else if (config_.score == ScoreKind::kProjection) {
      score = bench_norm2 > 0.0 ? raw / bench_norm2 : 0.0;
    }
    if (!finite || !std::isfinite(score)) {
      // A non-finite gradient is by definition harmful: reject outright.
      result.scores[i] = -std::numeric_limits<double>::infinity();
      result.accepted[i] = 0;
      continue;
    }
    result.scores[i] = score;
    result.accepted[i] = score >= config_.threshold ? 1 : 0;
  }
  return result;
}

DetectionResult DetectionModule::run(std::span<const fl::Upload> uploads,
                                     const fl::ServerCluster& cluster) const {
  return run(uploads, cluster.plan(), cluster.benchmark_slices(uploads));
}

DetectionMetrics evaluate_detection(const DetectionResult& result,
                                    std::span<const fl::Upload> uploads) {
  if (result.accepted.size() != uploads.size()) {
    throw std::invalid_argument("evaluate_detection: size mismatch");
  }
  DetectionMetrics metrics;
  std::size_t correct = 0, considered = 0;
  std::size_t honest_accepted = 0, attacker_rejected = 0;
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    if (result.uncertain[i]) continue;
    ++considered;
    const bool attacker = uploads[i].ground_truth_attack;
    if (attacker) {
      ++metrics.attacker_total;
      if (!result.accepted[i]) {
        ++attacker_rejected;
        ++correct;
      }
    } else {
      ++metrics.honest_total;
      if (result.accepted[i]) {
        ++honest_accepted;
        ++correct;
      }
    }
  }
  metrics.accuracy =
      considered ? static_cast<double>(correct) / static_cast<double>(considered) : 0.0;
  metrics.true_positive =
      metrics.honest_total
          ? static_cast<double>(honest_accepted) / static_cast<double>(metrics.honest_total)
          : 0.0;
  metrics.true_negative =
      metrics.attacker_total
          ? static_cast<double>(attacker_rejected) /
                static_cast<double>(metrics.attacker_total)
          : 0.0;
  return metrics;
}

}  // namespace fifl::core
