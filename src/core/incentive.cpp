#include "core/incentive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fifl::core {

IncentiveModule::IncentiveModule(IncentiveConfig config) : config_(config) {
  if (config.reward_pool <= 0.0) {
    throw std::invalid_argument("IncentiveModule: reward_pool must be > 0");
  }
  if (config.punishment_cap <= 0.0) {
    throw std::invalid_argument("IncentiveModule: punishment_cap must be > 0");
  }
}

std::vector<double> IncentiveModule::rewards(
    std::span<const double> reputations,
    std::span<const double> contributions) const {
  if (reputations.size() != contributions.size()) {
    throw std::invalid_argument("IncentiveModule: size mismatch");
  }
  const std::size_t n = reputations.size();
  std::vector<double> out(n, 0.0);

  double positive_total = 0.0;
  // order: worker index ascending (contributions vector order)
  for (double c : contributions) {
    if (c > 0.0 && std::isfinite(c)) positive_total += c;
  }
  if (positive_total <= 0.0) return out;

  const double floor = -config_.punishment_cap * config_.reward_pool;
  for (std::size_t i = 0; i < n; ++i) {
    const double c = contributions[i];
    if (c == 0.0 || std::isnan(c)) continue;
    double share = reputations[i] * (c / positive_total) * config_.reward_pool;
    if (!std::isfinite(share)) share = floor;  // -inf contribution
    out[i] = std::max(share, floor);
  }
  return out;
}

void CumulativeLedger::add_round(std::span<const double> rewards) {
  if (totals_.empty()) {
    totals_.assign(rewards.size(), 0.0);
  } else if (totals_.size() != rewards.size()) {
    throw std::invalid_argument("CumulativeLedger: worker count changed");
  }
  for (std::size_t i = 0; i < rewards.size(); ++i) totals_[i] += rewards[i];
  history_.push_back(totals_);
  ++rounds_;
}

}  // namespace fifl::core
