// Reputation module (Sec. 4.2): subjective logic model (SLM) extended with
// a time-decay factor.
//
// Events per worker per round: positive (r_i = 1 from detection), negative
// (r_i = 0), or uncertain (transmission failure). The module maintains
//  (a) the windowed SLM triple (St, Sn, Su) and reputation of Eq. 8-9, and
//  (b) the time-decayed reputation of Eq. 10:
//        R(t+1) = (1-γ)·R(t) + γ·r(t+1),
// whose expectation converges to the worker's honesty probability 1-p
// (Theorem 1) — our property tests check exactly that.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/signature.hpp"

namespace fifl::core {

enum class Event : std::uint8_t { kPositive, kNegative, kUncertain };

struct ReputationConfig {
  double gamma = 0.1;          // time-decay factor γ in (0,1)
  double alpha_trust = 1.0;    // α_t in Eq. 9
  double alpha_distrust = 1.0; // α_n
  double alpha_uncertain = 0.5;// α_u
  double initial = 0.0;        // R(0)
  bool time_decay = true;      // false => pure windowed SLM (ablation)
};

struct SlmTriple {
  double trust = 0.0;       // St
  double distrust = 0.0;    // Sn
  double uncertainty = 0.0; // Su
};

class ReputationModule {
 public:
  explicit ReputationModule(ReputationConfig config);

  const ReputationConfig& config() const noexcept { return config_; }

  /// Grows internal state to cover worker ids [0, n).
  void resize(std::size_t workers);
  std::size_t size() const noexcept { return decayed_.size(); }

  /// Record one detection outcome for a worker (Eq. 10 update, counters).
  void record(chain::NodeId worker, Event event);

  /// Current reputation R_i — time-decayed (Eq. 10) or windowed SLM
  /// (Eq. 8-9) depending on config().time_decay.
  double reputation(chain::NodeId worker) const;
  std::vector<double> all_reputations() const;

  /// The SLM triple over the full event history (Su = uncertain rate).
  SlmTriple slm(chain::NodeId worker) const;
  /// Windowed SLM reputation of Eq. 9 regardless of config().time_decay.
  double slm_reputation(chain::NodeId worker) const;

  std::size_t positives(chain::NodeId worker) const { return counts_.at(worker).pos; }
  std::size_t negatives(chain::NodeId worker) const { return counts_.at(worker).neg; }
  std::size_t uncertains(chain::NodeId worker) const { return counts_.at(worker).unc; }

 private:
  struct Counts {
    std::size_t pos = 0, neg = 0, unc = 0;
  };

  ReputationConfig config_;
  std::vector<double> decayed_;
  std::vector<Counts> counts_;
};

}  // namespace fifl::core
