#include "core/audit.hpp"

#include <algorithm>
#include <stdexcept>

namespace fifl::core {

ServerSelector::ServerSelector(std::size_t cluster_size) : m_(cluster_size) {
  if (cluster_size == 0) {
    throw std::invalid_argument("ServerSelector: cluster_size must be >= 1");
  }
}

namespace {
std::vector<chain::NodeId> top_m(std::span<const double> scores, std::size_t m,
                                 const std::set<chain::NodeId>& banned) {
  std::vector<chain::NodeId> ids;
  ids.reserve(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const auto id = static_cast<chain::NodeId>(i);
    if (!banned.contains(id)) ids.push_back(id);
  }
  if (ids.size() < m) {
    throw std::runtime_error("ServerSelector: not enough eligible candidates");
  }
  std::stable_sort(ids.begin(), ids.end(),
                   [&](chain::NodeId a, chain::NodeId b) {
                     if (scores[a] != scores[b]) return scores[a] > scores[b];
                     return a < b;
                   });
  ids.resize(m);
  // Deterministic slice assignment: slice j goes to the j-th lowest id of
  // the selected set, so a stable cluster keeps stable slice ownership.
  std::sort(ids.begin(), ids.end());
  return ids;
}
}  // namespace

std::vector<chain::NodeId> ServerSelector::select_initial(
    std::span<const double> verification_scores) const {
  return top_m(verification_scores, m_, banned_);
}

std::vector<chain::NodeId> ServerSelector::select_by_reputation(
    const ReputationModule& reputation, std::size_t workers) const {
  std::vector<double> scores(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    scores[i] = reputation.reputation(static_cast<chain::NodeId>(i));
  }
  return top_m(scores, m_, banned_);
}

void ServerSelector::blacklist(chain::NodeId node) { banned_.insert(node); }

bool ServerSelector::is_blacklisted(chain::NodeId node) const {
  return banned_.contains(node);
}

AuditService::AuditService(const chain::Ledger* ledger, ServerSelector* selector)
    : ledger_(ledger), selector_(selector) {
  if (!ledger_ || !selector_) {
    throw std::invalid_argument("AuditService: null ledger or selector");
  }
}

std::vector<chain::NodeId> AuditService::audit_reputation(
    chain::NodeId worker, std::uint64_t round, const ReputationConfig& config,
    double tolerance) {
  // Replay detection outcomes for this worker from the chain, in round
  // order, to recompute what the reputation should have been.
  ReputationModule replay(config);
  replay.resize(worker + 1);
  for (std::uint64_t r = 0; r <= round; ++r) {
    const auto detections =
        ledger_->query(chain::RecordKind::kDetection, r, worker);
    if (detections.empty()) continue;
    // Per-server detection records share one outcome value (the global
    // r_i); value >= 0.5 encodes "accepted", < 0 encodes "uncertain".
    const double v = detections.front().value;
    if (v < 0.0) {
      replay.record(worker, Event::kUncertain);
    } else {
      replay.record(worker, v >= 0.5 ? Event::kPositive : Event::kNegative);
    }
  }
  return audit_value(chain::RecordKind::kReputation, round, worker,
                     replay.reputation(worker), tolerance);
}

std::vector<chain::NodeId> AuditService::audit_value(
    chain::RecordKind kind, std::uint64_t round, chain::NodeId worker,
    double recomputed, double tolerance) {
  auto cheats = ledger_->audit_value(kind, round, worker, recomputed, tolerance);
  for (chain::NodeId server : cheats) selector_->blacklist(server);
  return cheats;
}

}  // namespace fifl::core
