// Incentive module (Sec. 4.4): the reward share of worker i is the product
// of its reputation and its normalised contribution,
//   I_i = R_i · C_i / Σ_{j: C_j > 0} C_j          (Eq. 15),
// scaled by the round's reward pool I_sum. Positive C_i earns a reward;
// negative C_i (worse than the b_h anchor) yields a punishment whose
// magnitude grows with both the deviation and the worker's reputation
// weighting. CumulativeLedger tracks per-worker totals across rounds for
// the Fig. 13/14 series.
#pragma once

#include <span>
#include <vector>

namespace fifl::core {

struct IncentiveConfig {
  /// Total reward distributed per round (I_sum).
  double reward_pool = 1.0;
  /// Clamp punishments at -punishment_cap * reward_pool per round so a
  /// single infinite-distance gradient cannot produce -inf bookkeeping.
  double punishment_cap = 10.0;
};

class IncentiveModule {
 public:
  explicit IncentiveModule(IncentiveConfig config);

  const IncentiveConfig& config() const noexcept { return config_; }

  /// Eq. 15 for every worker. `reputations` and `contributions` must have
  /// equal size. Returns per-worker rewards (negative = punishment). If no
  /// worker has positive contribution, everyone gets 0.
  std::vector<double> rewards(std::span<const double> reputations,
                              std::span<const double> contributions) const;

 private:
  IncentiveConfig config_;
};

/// Accumulates per-worker rewards over rounds (Figs. 13-14 series).
class CumulativeLedger {
 public:
  void add_round(std::span<const double> rewards);
  std::size_t rounds() const noexcept { return rounds_; }
  std::size_t workers() const noexcept { return totals_.size(); }
  double total(std::size_t worker) const { return totals_.at(worker); }
  const std::vector<double>& totals() const noexcept { return totals_; }
  /// history()[t][i]: cumulative reward of worker i after round t.
  const std::vector<std::vector<double>>& history() const noexcept {
    return history_;
  }

 private:
  std::size_t rounds_ = 0;
  std::vector<double> totals_;
  std::vector<std::vector<double>> history_;
};

}  // namespace fifl::core
