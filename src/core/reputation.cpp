#include "core/reputation.hpp"

#include <stdexcept>

namespace fifl::core {

ReputationModule::ReputationModule(ReputationConfig config) : config_(config) {
  if (config.gamma <= 0.0 || config.gamma >= 1.0) {
    throw std::invalid_argument("ReputationModule: gamma must be in (0,1)");
  }
}

void ReputationModule::resize(std::size_t workers) {
  if (workers < decayed_.size()) return;
  decayed_.resize(workers, config_.initial);
  counts_.resize(workers);
}

void ReputationModule::record(chain::NodeId worker, Event event) {
  if (worker >= decayed_.size()) resize(worker + 1);
  Counts& counts = counts_[worker];
  switch (event) {
    case Event::kPositive:
      ++counts.pos;
      decayed_[worker] =
          (1.0 - config_.gamma) * decayed_[worker] + config_.gamma * 1.0;
      break;
    case Event::kNegative:
      ++counts.neg;
      decayed_[worker] = (1.0 - config_.gamma) * decayed_[worker];
      break;
    case Event::kUncertain:
      // Uncertain events carry no evidence about honesty: they only feed
      // Su. The decayed estimate is left unchanged.
      ++counts.unc;
      break;
  }
}

double ReputationModule::reputation(chain::NodeId worker) const {
  if (worker >= decayed_.size()) return config_.initial;
  return config_.time_decay ? decayed_[worker] : slm_reputation(worker);
}

std::vector<double> ReputationModule::all_reputations() const {
  std::vector<double> out(decayed_.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = reputation(static_cast<chain::NodeId>(i));
  }
  return out;
}

SlmTriple ReputationModule::slm(chain::NodeId worker) const {
  SlmTriple triple;
  if (worker >= counts_.size()) return triple;
  const Counts& counts = counts_[worker];
  const std::size_t events = counts.pos + counts.neg + counts.unc;
  if (events == 0) return triple;
  triple.uncertainty = static_cast<double>(counts.unc) / static_cast<double>(events);
  const std::size_t decided = counts.pos + counts.neg;
  if (decided > 0) {
    triple.trust = (1.0 - triple.uncertainty) * static_cast<double>(counts.pos) /
                   static_cast<double>(decided);
    triple.distrust = (1.0 - triple.uncertainty) *
                      static_cast<double>(counts.neg) /
                      static_cast<double>(decided);
  }
  return triple;
}

double ReputationModule::slm_reputation(chain::NodeId worker) const {
  const SlmTriple t = slm(worker);
  return config_.alpha_trust * t.trust - config_.alpha_distrust * t.distrust -
         config_.alpha_uncertain * t.uncertainty;
}

}  // namespace fifl::core
