// Sequential model container plus a ResidualBlock (two 3x3 convs with an
// identity skip), which together express every architecture the paper
// evaluates (LeNet for MNIST, a small residual CNN standing in for ResNet
// on CIFAR, and MLPs for fast tests).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace fifl::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  Sequential& add(LayerPtr layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
    return *this;
  }

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  // ---- flat parameter vector interop (used by the FL wire format) ----
  /// Total number of trainable scalars.
  std::size_t parameter_count();
  /// Copy all parameter values into one flat vector (layer order).
  std::vector<float> flatten_parameters();
  /// Copy all parameter gradients into one flat vector (layer order).
  std::vector<float> flatten_gradients();
  /// Overwrite parameter values from a flat vector; size must match.
  void load_parameters(std::span<const float> flat);
  void zero_grad();

 private:
  std::vector<LayerPtr> layers_;
};

/// y = ReLU(conv2(ReLU(conv1(x))) + x). Channel count is preserved so the
/// skip is a plain identity (sufficient for the paper's scale).
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::size_t channels, util::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "ResidualBlock"; }

 private:
  Conv2d conv1_;
  ReLU relu1_;
  Conv2d conv2_;
  tensor::Tensor cached_sum_;  // pre-activation of the final ReLU
};

}  // namespace fifl::nn
