#include "nn/checkpoint.hpp"

#include "util/serialize.hpp"

namespace fifl::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4649464c;  // "FIFL"
constexpr std::uint32_t kVersion = 1;
}  // namespace

std::vector<std::uint8_t> checkpoint_bytes(Sequential& model,
                                           const std::string& tag) {
  util::ByteWriter writer;
  writer.write_u32(kMagic);
  writer.write_u32(kVersion);
  writer.write_string(tag);
  writer.write_f32_array(model.flatten_parameters());
  return writer.take();
}

std::string restore_checkpoint(Sequential& model,
                               std::span<const std::uint8_t> bytes) {
  util::ByteReader reader(bytes);
  if (reader.read_u32() != kMagic) {
    throw util::SerializeError("checkpoint: bad magic");
  }
  if (reader.read_u32() != kVersion) {
    throw util::SerializeError("checkpoint: unsupported version");
  }
  std::string tag = reader.read_string();
  const std::vector<float> params = reader.read_f32_array();
  if (params.size() != model.parameter_count()) {
    throw util::SerializeError(
        "checkpoint: parameter count mismatch (checkpoint " +
        std::to_string(params.size()) + ", model " +
        std::to_string(model.parameter_count()) + ")");
  }
  model.load_parameters(params);
  return tag;
}

void save_checkpoint(Sequential& model, const std::string& path,
                     const std::string& tag) {
  util::ByteWriter writer;
  const auto bytes = checkpoint_bytes(model, tag);
  writer.write_bytes(bytes);
  writer.save(path);
}

std::string load_checkpoint(Sequential& model, const std::string& path) {
  const auto bytes = util::ByteReader::load(path);
  return restore_checkpoint(model, bytes);
}

}  // namespace fifl::nn
