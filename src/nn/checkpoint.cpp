#include "nn/checkpoint.hpp"

#include "util/serialize.hpp"

namespace fifl::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4649464c;  // "FIFL"
constexpr std::uint32_t kVersion = 1;
}  // namespace

std::vector<std::uint8_t> checkpoint_bytes(Sequential& model,
                                           const std::string& tag) {
  util::ByteWriter writer;
  writer.write_u32(kMagic);
  writer.write_u32(kVersion);
  writer.write_string(tag);
  writer.write_f32_array(model.flatten_parameters());
  return writer.take();
}

ParsedCheckpoint parse_checkpoint(std::span<const std::uint8_t> bytes) {
  util::ByteReader reader(bytes);
  if (reader.read_u32() != kMagic) {
    throw util::SerializeError("checkpoint: bad magic");
  }
  if (reader.read_u32() != kVersion) {
    throw util::SerializeError("checkpoint: unsupported version");
  }
  ParsedCheckpoint parsed;
  parsed.tag = reader.read_string();
  parsed.parameters = reader.read_f32_array();
  return parsed;
}

std::string restore_checkpoint(Sequential& model,
                               std::span<const std::uint8_t> bytes) {
  ParsedCheckpoint parsed = parse_checkpoint(bytes);
  if (parsed.parameters.size() != model.parameter_count()) {
    throw util::SerializeError(
        "checkpoint: parameter count mismatch (checkpoint " +
        std::to_string(parsed.parameters.size()) + ", model " +
        std::to_string(model.parameter_count()) + ")");
  }
  model.load_parameters(parsed.parameters);
  return parsed.tag;
}

void save_checkpoint(Sequential& model, const std::string& path,
                     const std::string& tag) {
  util::ByteWriter writer;
  const auto bytes = checkpoint_bytes(model, tag);
  writer.write_bytes(bytes);
  writer.save(path);
}

std::string load_checkpoint(Sequential& model, const std::string& path) {
  const auto bytes = util::ByteReader::load(path);
  return restore_checkpoint(model, bytes);
}

}  // namespace fifl::nn
