// SGD with optional momentum and weight decay — the optimizer used in the
// paper's training loop (Eq. 3: θ_{t+1} = θ_t − η·G̃).
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace fifl::nn {

class Sgd final {
 public:
  struct Options {
    double lr = 0.01;
    double momentum = 0.0;
    double weight_decay = 0.0;
  };

  Sgd() : opts_(Options{}) {}
  explicit Sgd(Options opts) : opts_(opts) {}

  double lr() const noexcept { return opts_.lr; }
  void set_lr(double lr) noexcept { opts_.lr = lr; }

  /// Applies one update from each parameter's accumulated gradient.
  void step(const std::vector<Parameter*>& params);

 private:
  Options opts_;
  std::vector<tensor::Tensor> velocity_;  // lazily sized to params
};

/// Adam (Kingma & Ba) with bias correction — offered for local training
/// experiments beyond the paper's plain-SGD setting. Note that FL
/// aggregation semantics (G_i = (θ_t − θ')/η) remain well-defined: the
/// uploaded "gradient" is then the effective parameter displacement.
class Adam final {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;
  };

  Adam() : opts_(Options{}) {}
  explicit Adam(Options opts);

  double lr() const noexcept { return opts_.lr; }
  void set_lr(double lr) noexcept { opts_.lr = lr; }
  std::uint64_t steps() const noexcept { return step_count_; }

  void step(const std::vector<Parameter*>& params);

 private:
  Options opts_;
  std::vector<tensor::Tensor> m_;  // first-moment EMA
  std::vector<tensor::Tensor> v_;  // second-moment EMA
  std::uint64_t step_count_ = 0;
};

}  // namespace fifl::nn
