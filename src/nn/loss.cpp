#include "nn/loss.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace fifl::nn {

double SoftmaxCrossEntropy::forward(const tensor::Tensor& logits,
                                    std::span<const std::int32_t> labels) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("SoftmaxCrossEntropy: logits must be (N,C)");
  }
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  if (labels.size() != n) {
    throw std::invalid_argument("SoftmaxCrossEntropy: label count mismatch");
  }
  probs_ = tensor::Tensor({n, c});
  labels_.assign(labels.begin(), labels.end());
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    float maxv = -std::numeric_limits<float>::infinity();
    bool row_finite = true;
    for (std::size_t j = 0; j < c; ++j) {
      const float v = logits(i, j);
      if (!std::isfinite(v)) row_finite = false;
      maxv = std::max(maxv, v);
    }
    if (!row_finite || !std::isfinite(maxv)) {
      // Model diverged: propagate NaN loss, keep uniform probabilities so
      // the backward pass stays finite enough to keep simulating.
      total = std::numeric_limits<double>::quiet_NaN();
      for (std::size_t j = 0; j < c; ++j) {
        probs_(i, j) = 1.0f / static_cast<float>(c);
      }
      continue;
    }
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      denom += std::exp(static_cast<double>(logits(i, j) - maxv));
    }
    const double log_denom = std::log(denom);
    for (std::size_t j = 0; j < c; ++j) {
      probs_(i, j) = static_cast<float>(
          std::exp(static_cast<double>(logits(i, j) - maxv) - log_denom));
    }
    const auto label = static_cast<std::size_t>(labels[i]);
    if (label >= c) {
      throw std::out_of_range("SoftmaxCrossEntropy: label out of range");
    }
    total -= static_cast<double>(logits(i, label) - maxv) - log_denom;
  }
  return total / static_cast<double>(n);
}

tensor::Tensor SoftmaxCrossEntropy::backward() const {
  if (probs_.empty()) {
    throw std::logic_error("SoftmaxCrossEntropy::backward before forward");
  }
  const std::size_t n = probs_.dim(0), c = probs_.dim(1);
  tensor::Tensor grad = probs_.clone();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    grad(i, static_cast<std::size_t>(labels_[i])) -= 1.0f;
    for (std::size_t j = 0; j < c; ++j) grad(i, j) *= inv_n;
  }
  return grad;
}

double accuracy(const tensor::Tensor& logits,
                std::span<const std::int32_t> labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size()) {
    throw std::invalid_argument("accuracy: shape mismatch");
  }
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < c; ++j) {
      if (logits(i, j) > logits(i, best)) best = j;
    }
    if (best == static_cast<std::size_t>(labels[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace fifl::nn
