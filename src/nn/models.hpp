// Model zoo covering the paper's evaluation:
//  - LeNet (MNIST experiments, Figs. 7/9-14),
//  - MiniResNet, a scaled-down residual CNN standing in for "ResNet on
//    CIFAR10" (Figs. 8/10) — see DESIGN.md substitution table,
//  - Mlp, a small dense net used where the figures only need gradient
//    geometry and speed matters (detection/reputation/incentive sweeps).
#pragma once

#include <memory>

#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fifl::nn {

struct ModelSpec {
  std::size_t channels = 1;
  std::size_t image_size = 28;
  std::size_t classes = 10;
};

/// LeNet-style CNN: conv(6,5x5) -> pool -> conv(16,5x5) -> pool -> FC.
std::unique_ptr<Sequential> make_lenet(const ModelSpec& spec, util::Rng& rng);

/// Residual CNN: conv(8) -> block(8) -> pool -> conv(16) -> block(16) ->
/// pool -> FC.
std::unique_ptr<Sequential> make_mini_resnet(const ModelSpec& spec,
                                             util::Rng& rng);

/// Dense net on flattened input: FC(hidden) -> ReLU -> FC(classes).
std::unique_ptr<Sequential> make_mlp(std::size_t inputs, std::size_t hidden,
                                     std::size_t classes, util::Rng& rng);

/// VGG-style CNN: two conv-conv-pool stages (8->8, 16->16 channels) and a
/// dropout-regularised dense head. A third architecture for robustness
/// studies; image_size must be divisible by 4.
std::unique_ptr<Sequential> make_mini_vgg(const ModelSpec& spec, util::Rng& rng,
                                          double dropout = 0.25);

}  // namespace fifl::nn
