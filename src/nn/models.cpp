#include "nn/models.hpp"

#include <stdexcept>

namespace fifl::nn {

std::unique_ptr<Sequential> make_lenet(const ModelSpec& spec, util::Rng& rng) {
  if (spec.image_size % 4 != 0) {
    throw std::invalid_argument("make_lenet: image_size must be divisible by 4");
  }
  auto model = std::make_unique<Sequential>();
  model->emplace<Conv2d>(
      tensor::ConvSpec{.in_channels = spec.channels,
                       .out_channels = 6,
                       .kernel = 5,
                       .stride = 1,
                       .padding = 2},
      rng);
  model->emplace<ReLU>();
  model->emplace<MaxPool2d>(2);
  model->emplace<Conv2d>(
      tensor::ConvSpec{.in_channels = 6,
                       .out_channels = 16,
                       .kernel = 5,
                       .stride = 1,
                       .padding = 2},
      rng);
  model->emplace<ReLU>();
  model->emplace<MaxPool2d>(2);
  model->emplace<Flatten>();
  const std::size_t feat = 16 * (spec.image_size / 4) * (spec.image_size / 4);
  model->emplace<Linear>(feat, 84, rng);
  model->emplace<ReLU>();
  model->emplace<Linear>(84, spec.classes, rng);
  return model;
}

std::unique_ptr<Sequential> make_mini_resnet(const ModelSpec& spec,
                                             util::Rng& rng) {
  if (spec.image_size % 2 != 0) {
    throw std::invalid_argument("make_mini_resnet: image_size must be even");
  }
  auto model = std::make_unique<Sequential>();
  model->emplace<Conv2d>(
      tensor::ConvSpec{.in_channels = spec.channels,
                       .out_channels = 8,
                       .kernel = 3,
                       .stride = 1,
                       .padding = 1},
      rng);
  model->emplace<ReLU>();
  model->emplace<ResidualBlock>(8, rng);
  model->emplace<MaxPool2d>(2);
  model->emplace<Conv2d>(
      tensor::ConvSpec{.in_channels = 8,
                       .out_channels = 16,
                       .kernel = 3,
                       .stride = 1,
                       .padding = 1},
      rng);
  model->emplace<ReLU>();
  model->emplace<ResidualBlock>(16, rng);
  if (spec.image_size % 4 == 0) model->emplace<MaxPool2d>(2);
  model->emplace<Flatten>();
  const std::size_t down = spec.image_size % 4 == 0 ? 4 : 2;
  const std::size_t feat =
      16 * (spec.image_size / down) * (spec.image_size / down);
  model->emplace<Linear>(feat, spec.classes, rng);
  return model;
}

std::unique_ptr<Sequential> make_mini_vgg(const ModelSpec& spec, util::Rng& rng,
                                          double dropout) {
  if (spec.image_size % 4 != 0) {
    throw std::invalid_argument("make_mini_vgg: image_size must be divisible by 4");
  }
  auto model = std::make_unique<Sequential>();
  auto conv = [&](std::size_t in, std::size_t out) {
    model->emplace<Conv2d>(
        tensor::ConvSpec{.in_channels = in,
                         .out_channels = out,
                         .kernel = 3,
                         .stride = 1,
                         .padding = 1},
        rng);
    model->emplace<ReLU>();
  };
  conv(spec.channels, 8);
  conv(8, 8);
  model->emplace<MaxPool2d>(2);
  conv(8, 16);
  conv(16, 16);
  model->emplace<MaxPool2d>(2);
  model->emplace<Flatten>();
  const std::size_t feat = 16 * (spec.image_size / 4) * (spec.image_size / 4);
  model->emplace<Linear>(feat, 64, rng);
  model->emplace<ReLU>();
  if (dropout > 0.0) model->emplace<Dropout>(dropout, rng.split(0xd0));
  model->emplace<Linear>(64, spec.classes, rng);
  return model;
}

std::unique_ptr<Sequential> make_mlp(std::size_t inputs, std::size_t hidden,
                                     std::size_t classes, util::Rng& rng) {
  auto model = std::make_unique<Sequential>();
  model->emplace<Linear>(inputs, hidden, rng);
  model->emplace<ReLU>();
  model->emplace<Linear>(hidden, classes, rng);
  return model;
}

}  // namespace fifl::nn
