// Layer abstraction for the hand-written backprop engine.
//
// The engine is deliberately a "tape-free" design: each Layer caches
// whatever it needs from its own forward() call and consumes it in
// backward(). That is enough for the strictly feed-forward (plus residual
// skip) models the paper evaluates, and keeps the substrate small and
// auditable. Parameters pair a value tensor with a same-shaped gradient
// accumulator; the FL layer flattens them in to / out of wire vectors.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace fifl::nn {

/// A trainable tensor and its gradient accumulator.
struct Parameter {
  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;

  Parameter(std::string n, tensor::Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() noexcept { grad.zero(); }
};

/// Base class for all layers. Layers are stateful: backward() must be
/// called with the gradient matching the most recent forward().
class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute output activations; caches inputs needed for backward().
  virtual tensor::Tensor forward(const tensor::Tensor& input) = 0;
  /// Propagate gradients; accumulates into this layer's Parameter::grad.
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  /// Non-owning views of this layer's trainable parameters (may be empty).
  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace fifl::nn
