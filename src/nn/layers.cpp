#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace fifl::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, double momentum, double epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_("gamma", tensor::Tensor({channels}, 1.0f)),
      beta_("beta", tensor::Tensor({channels}, 0.0f)),
      running_mean_({channels}, 0.0f),
      running_var_({channels}, 1.0f) {
  if (channels == 0) throw std::invalid_argument("BatchNorm2d: zero channels");
  if (momentum <= 0.0 || momentum > 1.0) {
    throw std::invalid_argument("BatchNorm2d: momentum outside (0,1]");
  }
  if (epsilon <= 0.0) throw std::invalid_argument("BatchNorm2d: epsilon <= 0");
}

tensor::Tensor BatchNorm2d::forward(const tensor::Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: expected (N," +
                                std::to_string(channels_) + ",H,W), got " +
                                input.shape_string());
  }
  const std::size_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const auto per_channel = static_cast<double>(n * h * w);
  tensor::Tensor out = input.clone();
  cached_xhat_ = tensor::Tensor(input.shape());
  cached_inv_std_.assign(channels_, 0.0);

  for (std::size_t c = 0; c < channels_; ++c) {
    double mean, var;
    if (training_) {
      double sum = 0.0, sum2 = 0.0;
      for (std::size_t img = 0; img < n; ++img) {
        for (std::size_t y = 0; y < h; ++y) {
          for (std::size_t x = 0; x < w; ++x) {
            const auto v = static_cast<double>(input(img, c, y, x));
            sum += v;
            sum2 += v * v;
          }
        }
      }
      mean = sum / per_channel;
      var = sum2 / per_channel - mean * mean;
      running_mean_[c] = static_cast<float>(
          (1.0 - momentum_) * static_cast<double>(running_mean_[c]) +
          momentum_ * mean);
      running_var_[c] = static_cast<float>(
          (1.0 - momentum_) * static_cast<double>(running_var_[c]) +
          momentum_ * var);
    } else {
      mean = static_cast<double>(running_mean_[c]);
      var = static_cast<double>(running_var_[c]);
    }
    const double inv_std = 1.0 / std::sqrt(var + epsilon_);
    cached_inv_std_[c] = inv_std;
    const float g = gamma_.value[c];
    const float b = beta_.value[c];
    for (std::size_t img = 0; img < n; ++img) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          const auto xhat = static_cast<float>(
              (static_cast<double>(input(img, c, y, x)) - mean) * inv_std);
          cached_xhat_(img, c, y, x) = xhat;
          out(img, c, y, x) = g * xhat + b;
        }
      }
    }
  }
  return out;
}

tensor::Tensor BatchNorm2d::backward(const tensor::Tensor& grad_output) {
  if (cached_xhat_.shape() != grad_output.shape()) {
    throw std::logic_error("BatchNorm2d: backward without matching forward");
  }
  const std::size_t n = grad_output.dim(0), h = grad_output.dim(2),
                    w = grad_output.dim(3);
  const auto per_channel = static_cast<double>(n * h * w);
  tensor::Tensor grad_input(grad_output.shape());

  for (std::size_t c = 0; c < channels_; ++c) {
    // dγ = Σ dy·x̂; dβ = Σ dy.
    double dgamma = 0.0, dbeta = 0.0, dot_xhat = 0.0;
    for (std::size_t img = 0; img < n; ++img) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          const auto dy = static_cast<double>(grad_output(img, c, y, x));
          const auto xhat = static_cast<double>(cached_xhat_(img, c, y, x));
          dgamma += dy * xhat;
          dbeta += dy;
          dot_xhat += dy * xhat;
        }
      }
    }
    gamma_.grad[c] += static_cast<float>(dgamma);
    beta_.grad[c] += static_cast<float>(dbeta);

    if (!training_) {
      // Eval mode: statistics are constants, dx = dy·γ·inv_std.
      const double scale = static_cast<double>(gamma_.value[c]) * cached_inv_std_[c];
      for (std::size_t img = 0; img < n; ++img) {
        for (std::size_t y = 0; y < h; ++y) {
          for (std::size_t x = 0; x < w; ++x) {
            grad_input(img, c, y, x) = static_cast<float>(
                static_cast<double>(grad_output(img, c, y, x)) * scale);
          }
        }
      }
      continue;
    }
    // Train mode: dx = γ·inv_std/m · (m·dy − Σdy − x̂·Σ(dy·x̂)).
    const double scale =
        static_cast<double>(gamma_.value[c]) * cached_inv_std_[c] / per_channel;
    for (std::size_t img = 0; img < n; ++img) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          const auto dy = static_cast<double>(grad_output(img, c, y, x));
          const auto xhat = static_cast<double>(cached_xhat_(img, c, y, x));
          grad_input(img, c, y, x) = static_cast<float>(
              scale * (per_channel * dy - dbeta - xhat * dot_xhat));
        }
      }
    }
  }
  return grad_input;
}

void kaiming_uniform(tensor::Tensor& t, std::size_t fan_in, util::Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in == 0 ? 1 : fan_in));
  for (auto& v : t.flat()) {
    v = static_cast<float>(rng.uniform(-bound, bound));
  }
}

Linear::Linear(std::size_t in_features, std::size_t out_features,
               util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("weight", tensor::Tensor({out_features, in_features})),
      bias_("bias", tensor::Tensor({out_features})) {
  kaiming_uniform(weight_.value, in_, rng);
  kaiming_uniform(bias_.value, in_, rng);
}

tensor::Tensor Linear::forward(const tensor::Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Linear: expected (N," + std::to_string(in_) +
                                "), got " + input.shape_string());
  }
  cached_input_ = input.clone();
  tensor::Tensor out = tensor::matmul_nt(input, weight_.value);  // (N, out)
  const std::size_t n = out.dim(0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < out_; ++j) out(i, j) += bias_.value[j];
  }
  return out;
}

tensor::Tensor Linear::backward(const tensor::Tensor& grad_output) {
  // dW += dY^T X; db += column sums of dY; dX = dY W.
  tensor::Tensor gw = tensor::matmul_tn(grad_output, cached_input_);
  tensor::add_inplace(weight_.grad, gw);
  const std::size_t n = grad_output.dim(0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < out_; ++j) bias_.grad[j] += grad_output(i, j);
  }
  return tensor::matmul(grad_output, weight_.value);
}

Conv2d::Conv2d(tensor::ConvSpec spec, util::Rng& rng)
    : spec_(spec),
      weight_("weight", tensor::Tensor({spec.out_channels, spec.in_channels,
                                        spec.kernel, spec.kernel})),
      bias_("bias", tensor::Tensor({spec.out_channels})) {
  const std::size_t fan_in = spec.in_channels * spec.kernel * spec.kernel;
  kaiming_uniform(weight_.value, fan_in, rng);
  kaiming_uniform(bias_.value, fan_in, rng);
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& input) {
  cached_input_ = input.clone();
  return tensor::conv2d_forward(input, weight_.value, bias_.value, spec_);
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_output) {
  auto grads =
      tensor::conv2d_backward(cached_input_, weight_.value, grad_output, spec_);
  tensor::add_inplace(weight_.grad, grads.grad_weight);
  tensor::add_inplace(bias_.grad, grads.grad_bias);
  return std::move(grads.grad_input);
}

tensor::Tensor ReLU::forward(const tensor::Tensor& input) {
  cached_input_ = input.clone();
  tensor::Tensor out = input.clone();
  for (auto& v : out.flat()) {
    if (v < 0.0f) v = 0.0f;
  }
  return out;
}

tensor::Tensor ReLU::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor grad = grad_output.clone();
  const float* in = cached_input_.data();
  float* g = grad.data();
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (in[i] <= 0.0f) g[i] = 0.0f;
  }
  return grad;
}

tensor::Tensor Tanh::forward(const tensor::Tensor& input) {
  tensor::Tensor out = input.clone();
  for (auto& v : out.flat()) v = std::tanh(v);
  cached_output_ = out.clone();
  return out;
}

tensor::Tensor Tanh::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor grad = grad_output.clone();
  const float* y = cached_output_.data();
  float* g = grad.data();
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    g[i] *= 1.0f - y[i] * y[i];
  }
  return grad;
}

tensor::Tensor Sigmoid::forward(const tensor::Tensor& input) {
  tensor::Tensor out = input.clone();
  for (auto& v : out.flat()) {
    v = 1.0f / (1.0f + std::exp(-v));
  }
  cached_output_ = out.clone();
  return out;
}

tensor::Tensor Sigmoid::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor grad = grad_output.clone();
  const float* y = cached_output_.data();
  float* g = grad.data();
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    g[i] *= y[i] * (1.0f - y[i]);
  }
  return grad;
}

Dropout::Dropout(double p, util::Rng rng) : p_(p), rng_(rng) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

tensor::Tensor Dropout::forward(const tensor::Tensor& input) {
  if (!training_ || p_ == 0.0) {
    mask_.assign(input.numel(), 1.0f);
    return input.clone();
  }
  tensor::Tensor out = input.clone();
  mask_.resize(input.numel());
  const auto scale = static_cast<float>(1.0 / (1.0 - p_));
  for (std::size_t i = 0; i < out.numel(); ++i) {
    mask_[i] = rng_.bernoulli(p_) ? 0.0f : scale;
    out[i] *= mask_[i];
  }
  return out;
}

tensor::Tensor Dropout::backward(const tensor::Tensor& grad_output) {
  if (grad_output.numel() != mask_.size()) {
    throw std::logic_error("Dropout: backward without matching forward");
  }
  tensor::Tensor grad = grad_output.clone();
  for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= mask_[i];
  return grad;
}

tensor::Tensor MaxPool2d::forward(const tensor::Tensor& input) {
  cached_input_shape_ = input.shape();
  return tensor::maxpool2d_forward(input, window_, argmax_);
}

tensor::Tensor MaxPool2d::backward(const tensor::Tensor& grad_output) {
  return tensor::maxpool2d_backward(grad_output, argmax_, cached_input_shape_);
}

tensor::Tensor Flatten::forward(const tensor::Tensor& input) {
  cached_input_shape_ = input.shape();
  tensor::Tensor out = input.clone();
  const std::size_t n = input.dim(0);
  out.reshape({n, input.numel() / n});
  return out;
}

tensor::Tensor Flatten::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor grad = grad_output.clone();
  grad.reshape(cached_input_shape_);
  return grad;
}

tensor::Tensor GlobalAvgPool::forward(const tensor::Tensor& input) {
  cached_input_shape_ = input.shape();
  return tensor::global_avgpool_forward(input);
}

tensor::Tensor GlobalAvgPool::backward(const tensor::Tensor& grad_output) {
  return tensor::global_avgpool_backward(grad_output, cached_input_shape_);
}

}  // namespace fifl::nn
