// Concrete layers: Linear, Conv2d, ReLU, MaxPool2d, Flatten,
// GlobalAvgPool. Weight initialisation follows Kaiming/He fan-in scaling,
// which keeps activations stable in the small CNNs the paper uses.
#pragma once

#include <vector>

#include "nn/module.hpp"
#include "tensor/conv.hpp"
#include "util/rng.hpp"

namespace fifl::nn {

class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t in_, out_;
  Parameter weight_;  // (out, in)
  Parameter bias_;    // (out)
  tensor::Tensor cached_input_;
};

class Conv2d final : public Layer {
 public:
  Conv2d(tensor::ConvSpec spec, util::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Conv2d"; }

  const tensor::ConvSpec& spec() const noexcept { return spec_; }

 private:
  tensor::ConvSpec spec_;
  Parameter weight_;  // (OC, C, K, K)
  Parameter bias_;    // (OC)
  tensor::Tensor cached_input_;
};

class ReLU final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  tensor::Tensor cached_input_;
};

class Tanh final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  tensor::Tensor cached_output_;
};

class Sigmoid final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  tensor::Tensor cached_output_;
};

/// Inverted dropout: at train time each activation is zeroed with
/// probability p and survivors are scaled by 1/(1-p); in eval mode it is
/// the identity. Deterministic given its Rng stream.
class Dropout final : public Layer {
 public:
  Dropout(double p, util::Rng rng);

  void set_training(bool training) noexcept { training_ = training; }
  bool training() const noexcept { return training_; }

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

 private:
  double p_;
  util::Rng rng_;
  bool training_ = true;
  std::vector<float> mask_;
};

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t window) : window_(window) {}

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  std::size_t window_;
  std::vector<std::size_t> argmax_;
  tensor::Shape cached_input_shape_;
};

/// (N,C,H,W) -> (N, C*H*W).
class Flatten final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  tensor::Shape cached_input_shape_;
};

/// (N,C,H,W) -> (N,C).
class GlobalAvgPool final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  tensor::Shape cached_input_shape_;
};

/// Batch normalisation over NCHW channels: train mode normalises with the
/// batch statistics and updates running estimates (EMA with `momentum`);
/// eval mode uses the running estimates. Learnable per-channel γ/β.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, double momentum = 0.1,
                       double epsilon = 1e-5);

  void set_training(bool training) noexcept { training_ = training; }
  bool training() const noexcept { return training_; }
  const tensor::Tensor& running_mean() const noexcept { return running_mean_; }
  const tensor::Tensor& running_var() const noexcept { return running_var_; }

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  std::string name() const override { return "BatchNorm2d"; }

 private:
  std::size_t channels_;
  double momentum_;
  double epsilon_;
  bool training_ = true;
  Parameter gamma_;  // scale, init 1
  Parameter beta_;   // shift, init 0
  tensor::Tensor running_mean_;
  tensor::Tensor running_var_;
  // Forward caches (train mode).
  tensor::Tensor cached_xhat_;
  std::vector<double> cached_inv_std_;
};

/// Kaiming-uniform fill used by Linear/Conv2d: U(-b, b), b = sqrt(6/fan_in).
void kaiming_uniform(tensor::Tensor& t, std::size_t fan_in, util::Rng& rng);

}  // namespace fifl::nn
