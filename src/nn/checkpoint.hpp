// Model checkpoints: save/load the flat parameter vector with a magic
// header, format version, and a parameter-count check so a checkpoint can
// never be silently loaded into a mismatched architecture.
#pragma once

#include <string>

#include "nn/sequential.hpp"

namespace fifl::nn {

/// Serialized checkpoint bytes of the model's current parameters.
std::vector<std::uint8_t> checkpoint_bytes(Sequential& model,
                                           const std::string& tag = "");

/// Restore parameters from checkpoint bytes. Throws util::SerializeError
/// on bad magic/version or parameter-count mismatch. Returns the tag.
std::string restore_checkpoint(Sequential& model,
                               std::span<const std::uint8_t> bytes);

/// A checkpoint parsed without a model to restore into — what a
/// fifl::net worker does with a ModelBroadcast blob before handing the
/// flat parameters to its local replica.
struct ParsedCheckpoint {
  std::string tag;
  std::vector<float> parameters;
};

/// Validates magic/version and returns tag + flat parameters. Throws
/// util::SerializeError on malformed bytes.
ParsedCheckpoint parse_checkpoint(std::span<const std::uint8_t> bytes);

/// File convenience wrappers.
void save_checkpoint(Sequential& model, const std::string& path,
                     const std::string& tag = "");
std::string load_checkpoint(Sequential& model, const std::string& path);

}  // namespace fifl::nn
