#include "nn/sequential.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace fifl::nn {

tensor::Tensor Sequential::forward(const tensor::Tensor& input) {
  tensor::Tensor x = input.clone();
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor g = grad_output.clone();
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

std::size_t Sequential::parameter_count() {
  std::size_t n = 0;
  for (Parameter* p : parameters()) n += p->value.numel();
  return n;
}

std::vector<float> Sequential::flatten_parameters() {
  std::vector<float> flat;
  flat.reserve(parameter_count());
  for (Parameter* p : parameters()) {
    const auto view = p->value.flat();
    flat.insert(flat.end(), view.begin(), view.end());
  }
  return flat;
}

std::vector<float> Sequential::flatten_gradients() {
  std::vector<float> flat;
  flat.reserve(parameter_count());
  for (Parameter* p : parameters()) {
    const auto view = p->grad.flat();
    flat.insert(flat.end(), view.begin(), view.end());
  }
  return flat;
}

void Sequential::load_parameters(std::span<const float> flat) {
  std::size_t offset = 0;
  for (Parameter* p : parameters()) {
    const std::size_t n = p->value.numel();
    if (offset + n > flat.size()) {
      throw std::invalid_argument("load_parameters: flat vector too short");
    }
    float* dst = p->value.data();
    for (std::size_t i = 0; i < n; ++i) dst[i] = flat[offset + i];
    offset += n;
  }
  if (offset != flat.size()) {
    throw std::invalid_argument("load_parameters: flat vector too long");
  }
}

void Sequential::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

ResidualBlock::ResidualBlock(std::size_t channels, util::Rng& rng)
    : conv1_({.in_channels = channels,
              .out_channels = channels,
              .kernel = 3,
              .stride = 1,
              .padding = 1},
             rng),
      conv2_({.in_channels = channels,
              .out_channels = channels,
              .kernel = 3,
              .stride = 1,
              .padding = 1},
             rng) {}

tensor::Tensor ResidualBlock::forward(const tensor::Tensor& input) {
  tensor::Tensor h = conv1_.forward(input);
  h = relu1_.forward(h);
  h = conv2_.forward(h);
  tensor::add_inplace(h, input);
  cached_sum_ = h.clone();
  for (auto& v : h.flat()) {
    if (v < 0.0f) v = 0.0f;
  }
  return h;
}

tensor::Tensor ResidualBlock::backward(const tensor::Tensor& grad_output) {
  // Through the final ReLU.
  tensor::Tensor g = grad_output.clone();
  {
    const float* pre = cached_sum_.data();
    float* gp = g.data();
    for (std::size_t i = 0; i < g.numel(); ++i) {
      if (pre[i] <= 0.0f) gp[i] = 0.0f;
    }
  }
  // Branch gradient through conv2 -> relu1 -> conv1; skip adds g directly.
  tensor::Tensor branch = conv2_.backward(g);
  branch = relu1_.backward(branch);
  branch = conv1_.backward(branch);
  tensor::add_inplace(branch, g);
  return branch;
}

std::vector<Parameter*> ResidualBlock::parameters() {
  std::vector<Parameter*> params;
  for (Parameter* p : conv1_.parameters()) params.push_back(p);
  for (Parameter* p : conv2_.parameters()) params.push_back(p);
  return params;
}

}  // namespace fifl::nn
