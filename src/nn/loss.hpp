// Softmax cross-entropy loss with integrated backward pass, plus accuracy.
// The forward computes log-softmax in a numerically stable way (max-shift)
// and caches probabilities for the O(N*C) backward.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace fifl::nn {

class SoftmaxCrossEntropy {
 public:
  /// logits: (N, classes); labels: N class indices. Returns mean loss.
  /// Non-finite logits yield a NaN loss (propagating "model crashed"), not
  /// an exception — matching the paper's observed NaN blow-up (Fig. 7a).
  double forward(const tensor::Tensor& logits,
                 std::span<const std::int32_t> labels);

  /// Gradient of mean loss w.r.t. logits, from the cached forward.
  tensor::Tensor backward() const;

  /// Cached softmax probabilities of the last forward (N, classes).
  const tensor::Tensor& probabilities() const noexcept { return probs_; }

 private:
  tensor::Tensor probs_;
  std::vector<std::int32_t> labels_;
};

/// Fraction of rows whose argmax matches the label.
double accuracy(const tensor::Tensor& logits,
                std::span<const std::int32_t> labels);

}  // namespace fifl::nn
