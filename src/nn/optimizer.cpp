#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace fifl::nn {

void Sgd::step(const std::vector<Parameter*>& params) {
  const bool use_momentum = opts_.momentum != 0.0;
  if (use_momentum && velocity_.size() != params.size()) {
    velocity_.clear();
    velocity_.reserve(params.size());
    for (const Parameter* p : params) {
      velocity_.emplace_back(p->value.shape());
    }
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    Parameter& p = *params[k];
    float* value = p.value.data();
    const float* grad = p.grad.data();
    const auto lr = static_cast<float>(opts_.lr);
    const auto wd = static_cast<float>(opts_.weight_decay);
    if (use_momentum) {
      if (velocity_[k].shape() != p.value.shape()) {
        throw std::logic_error("Sgd: parameter set changed between steps");
      }
      const auto mu = static_cast<float>(opts_.momentum);
      float* vel = velocity_[k].data();
      for (std::size_t i = 0; i < p.value.numel(); ++i) {
        const float g = grad[i] + wd * value[i];
        vel[i] = mu * vel[i] + g;
        value[i] -= lr * vel[i];
      }
    } else {
      for (std::size_t i = 0; i < p.value.numel(); ++i) {
        const float g = grad[i] + wd * value[i];
        value[i] -= lr * g;
      }
    }
  }
}

Adam::Adam(Options opts) : opts_(opts) {
  if (opts.lr <= 0.0) throw std::invalid_argument("Adam: lr must be > 0");
  if (opts.beta1 < 0.0 || opts.beta1 >= 1.0 || opts.beta2 < 0.0 ||
      opts.beta2 >= 1.0) {
    throw std::invalid_argument("Adam: betas must be in [0,1)");
  }
  if (opts.epsilon <= 0.0) throw std::invalid_argument("Adam: epsilon <= 0");
}

void Adam::step(const std::vector<Parameter*>& params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (const Parameter* p : params) {
      m_.emplace_back(p->value.shape());
      v_.emplace_back(p->value.shape());
    }
    step_count_ = 0;
  }
  ++step_count_;
  const double bias1 = 1.0 - std::pow(opts_.beta1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(opts_.beta2, static_cast<double>(step_count_));
  const auto b1 = static_cast<float>(opts_.beta1);
  const auto b2 = static_cast<float>(opts_.beta2);
  const auto wd = static_cast<float>(opts_.weight_decay);
  for (std::size_t k = 0; k < params.size(); ++k) {
    Parameter& p = *params[k];
    if (m_[k].shape() != p.value.shape()) {
      throw std::logic_error("Adam: parameter set changed between steps");
    }
    float* value = p.value.data();
    const float* grad = p.grad.data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    for (std::size_t i = 0; i < p.value.numel(); ++i) {
      const float g = grad[i] + wd * value[i];
      m[i] = b1 * m[i] + (1.0f - b1) * g;
      v[i] = b2 * v[i] + (1.0f - b2) * g * g;
      const double m_hat = static_cast<double>(m[i]) / bias1;
      const double v_hat = static_cast<double>(v[i]) / bias2;
      value[i] -= static_cast<float>(
          opts_.lr * m_hat / (std::sqrt(v_hat) + opts_.epsilon));
    }
  }
}

}  // namespace fifl::nn
