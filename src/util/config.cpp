#include "util/config.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace fifl::util {

namespace {
std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}
}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        cfg.set(arg.substr(2), "true");
      } else {
        cfg.set(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    } else {
      cfg.positional_.push_back(arg);
    }
  }
  return cfg;
}

Config Config::from_text(const std::string& text) {
  Config cfg;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("Config: missing '=' in line: " + line);
    }
    cfg.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const { return values_.contains(key); }

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(const std::string& key,
                           const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return std::stoll(*v);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return std::stod(*v);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return std::strtoll(v, nullptr, 10);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return std::strtod(v, nullptr);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return v;
}

}  // namespace fifl::util
