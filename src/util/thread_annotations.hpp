// Clang Thread Safety Analysis annotations plus a minimally annotated
// mutex wrapper, so the locking discipline documented by fifl-lint's
// `// lock-order:` / `// guards` comments is also verified by a real
// compiler front end where one is available.
//
// Under Clang, `scripts/ci_static.sh` compiles the annotated net/obs TUs
// with -Werror=thread-safety and the attributes below become hard errors
// on any guarded-field access outside its lock. Under GCC (the default
// toolchain here) every macro expands to nothing and `util::Mutex` is a
// zero-overhead shim over std::mutex — fifl-lint R6-R9 covers that path.
//
// Convention (see DESIGN.md "Concurrency discipline"):
//   - plain mutexes use util::Mutex + util::MutexLock so TSA can see them
//     (libstdc++'s std::mutex / std::lock_guard carry no capability
//     attributes);
//   - mutexes paired with a std::condition_variable stay std::mutex,
//     because std::unique_lock is invisible to TSA; those are checked by
//     fifl-lint only (R7 predicate rule + R8 guarded-by).
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define FIFL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FIFL_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define FIFL_CAPABILITY(x) FIFL_THREAD_ANNOTATION(capability(x))
#define FIFL_SCOPED_CAPABILITY FIFL_THREAD_ANNOTATION(scoped_lockable)
#define FIFL_GUARDED_BY(x) FIFL_THREAD_ANNOTATION(guarded_by(x))
#define FIFL_PT_GUARDED_BY(x) FIFL_THREAD_ANNOTATION(pt_guarded_by(x))
#define FIFL_ACQUIRED_BEFORE(...) \
  FIFL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define FIFL_ACQUIRED_AFTER(...) \
  FIFL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define FIFL_REQUIRES(...) \
  FIFL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FIFL_ACQUIRE(...) \
  FIFL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FIFL_RELEASE(...) \
  FIFL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FIFL_TRY_ACQUIRE(...) \
  FIFL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define FIFL_EXCLUDES(...) FIFL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define FIFL_RETURN_CAPABILITY(x) FIFL_THREAD_ANNOTATION(lock_returned(x))
#define FIFL_NO_THREAD_SAFETY_ANALYSIS \
  FIFL_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fifl::util {

// std::mutex with capability attributes. Same size, same semantics; exists
// only because libstdc++'s std::mutex is opaque to -Wthread-safety.
class FIFL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FIFL_ACQUIRE() { mu_.lock(); }
  void unlock() FIFL_RELEASE() { mu_.unlock(); }
  bool try_lock() FIFL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock for util::Mutex, annotated as a scoped capability (the
// std::lock_guard idiom, visible to TSA).
class FIFL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FIFL_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FIFL_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace fifl::util
