#include "util/serialize.hpp"

#include <bit>
#include <cstring>
#include <fstream>

namespace fifl::util {

namespace {
// The on-disk format is little-endian; byte-swap on big-endian hosts.
template <typename T>
T to_little_endian(T v) {
  if constexpr (std::endian::native == std::endian::big) {
    T out;
    auto* src = reinterpret_cast<const std::uint8_t*>(&v);
    auto* dst = reinterpret_cast<std::uint8_t*>(&out);
    for (std::size_t i = 0; i < sizeof(T); ++i) dst[i] = src[sizeof(T) - 1 - i];
    return out;
  }
  return v;
}
}  // namespace

void ByteWriter::write_u8(std::uint8_t v) { buffer_.push_back(v); }

void ByteWriter::write_u32(std::uint32_t v) {
  v = to_little_endian(v);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&v);
  buffer_.insert(buffer_.end(), bytes, bytes + sizeof v);
}

void ByteWriter::write_u64(std::uint64_t v) {
  v = to_little_endian(v);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&v);
  buffer_.insert(buffer_.end(), bytes, bytes + sizeof v);
}

void ByteWriter::write_f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  write_u32(bits);
}

void ByteWriter::write_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  write_u64(bits);
}

void ByteWriter::write_string(const std::string& s) {
  write_u64(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void ByteWriter::write_f32_array(std::span<const float> xs) {
  write_u64(xs.size());
  for (float x : xs) write_f32(x);
}

void ByteWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw SerializeError("cannot open for writing: " + path);
  f.write(reinterpret_cast<const char*>(buffer_.data()),
          static_cast<std::streamsize>(buffer_.size()));
  if (!f) throw SerializeError("write failed: " + path);
}

std::vector<std::uint8_t> ByteReader::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw SerializeError("cannot open for reading: " + path);
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(data.data()), size);
  if (!f) throw SerializeError("read failed: " + path);
  return data;
}

void ByteReader::require(std::size_t n) const {
  // Compare against the remaining byte count instead of computing
  // cursor_ + n, which can wrap for attacker-controlled n (a corrupted
  // length prefix near SIZE_MAX) and make the check pass.
  if (n > data_.size() - cursor_) {
    throw SerializeError("truncated input: need " + std::to_string(n) +
                         " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return data_[cursor_++];
}

std::uint32_t ByteReader::read_u32() {
  require(4);
  std::uint32_t v;
  std::memcpy(&v, data_.data() + cursor_, sizeof v);
  cursor_ += sizeof v;
  return to_little_endian(v);
}

std::uint64_t ByteReader::read_u64() {
  require(8);
  std::uint64_t v;
  std::memcpy(&v, data_.data() + cursor_, sizeof v);
  cursor_ += sizeof v;
  return to_little_endian(v);
}

float ByteReader::read_f32() {
  const std::uint32_t bits = read_u32();
  float v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

double ByteReader::read_f64() {
  const std::uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteReader::read_string() {
  const std::uint64_t n = read_u64();
  require(static_cast<std::size_t>(n));
  std::string s(reinterpret_cast<const char*>(data_.data() + cursor_),
                static_cast<std::size_t>(n));
  cursor_ += static_cast<std::size_t>(n);
  return s;
}

std::vector<float> ByteReader::read_f32_array() {
  const std::uint64_t n = read_u64();
  // Guard the element-count multiply: a corrupted count near 2^64 would
  // overflow n * 4 to a small value, pass require(), and then crash in
  // the vector allocation. Remaining bytes bound the plausible count.
  if (n > remaining() / sizeof(float)) {
    throw SerializeError("truncated input: f32 array claims " +
                         std::to_string(n) + " elements, only " +
                         std::to_string(remaining()) + " bytes remain");
  }
  std::vector<float> xs(static_cast<std::size_t>(n));
  for (auto& x : xs) x = read_f32();
  return xs;
}

std::vector<std::uint8_t> ByteReader::read_bytes(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                                data_.begin() + static_cast<std::ptrdiff_t>(cursor_ + n));
  cursor_ += n;
  return out;
}

}  // namespace fifl::util
