// Tiny key=value configuration store backing the examples' CLI flags and
// the benches' environment overrides (e.g. FIFL_ROUNDS=20 for a quick run).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fifl::util {

class Config {
 public:
  Config() = default;

  /// Parse "--key=value" / "--flag" style arguments. Unrecognized
  /// positional arguments are collected in positional().
  static Config from_args(int argc, const char* const* argv);

  /// Parse newline-separated "key = value" text ('#' comments allowed).
  static Config from_text(const std::string& text);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::map<std::string, std::string>& entries() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Reads an integer environment override, e.g. env_int("FIFL_ROUNDS", 100).
std::int64_t env_int(const char* name, std::int64_t fallback);
double env_double(const char* name, double fallback);
/// Raw string environment override; fallback when unset or empty.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace fifl::util
