// Descriptive statistics used throughout the evaluation: means, standard
// deviations, Pearson correlation (the paper's fairness coefficient,
// Eq. 16), histograms for the reward-distribution figures, and a streaming
// accumulator for per-round metrics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fifl::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double median(std::vector<double> xs);  // by value: needs to sort

/// Pearson correlation coefficient in [-1, 1]; the paper's fairness
/// coefficient C_s (Eq. 16). Returns 0 when either series is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation; robust fairness check used in tests.
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Gini coefficient of a non-negative distribution, in [0, 1); 0 = fully
/// equal. Used to quantify payout inequality (FLI's objective). Negative
/// entries throw std::invalid_argument; an all-zero series returns 0.
double gini(std::span<const double> xs);

/// Streaming mean/variance (Welford). Numerically stable for long runs.
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); values outside clamp to end bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x, double weight = 1.0) noexcept;
  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t b) const noexcept;
  double bin_hi(std::size_t b) const noexcept;
  double count(std::size_t b) const noexcept { return counts_[b]; }
  double total() const noexcept;
  /// Share of total mass in bin b (0 if empty histogram).
  double fraction(std::size_t b) const noexcept;

 private:
  double lo_, hi_;
  std::vector<double> counts_;
};

}  // namespace fifl::util
