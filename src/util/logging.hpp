// Minimal leveled logger. Single global sink (stderr by default), thread
// safe, with a level that benches lower to keep figure output clean.
//
// Each line carries a monotonic timestamp (seconds since process start)
// and a compact thread id: "[   12.3456 t01 INFO ] message". The initial
// level honours the FIFL_LOG_LEVEL environment variable (debug | info |
// warn | error | off, or 0-4), so examples and benches can raise
// verbosity without recompiling; set_log_level() still overrides at
// runtime.
#pragma once

#include <sstream>
#include <string>

namespace fifl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one "[<uptime> t<id> LEVEL] message" line if `level` >= the
/// global level.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace fifl::util
