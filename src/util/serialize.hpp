// Binary serialization primitives: a little-endian, length-prefixed
// writer/reader pair used for model checkpoints (nn/checkpoint.hpp) and
// ledger export (chain). Format safety: every read is bounds-checked and
// throws SerializeError on truncation or magic/version mismatch — no
// silent partial loads.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace fifl::util {

class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteWriter {
 public:
  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);       // u64 length + bytes
  void write_f32_array(std::span<const float> xs);  // u64 count + payload
  void write_bytes(std::span<const std::uint8_t> bytes);

  const std::vector<std::uint8_t>& buffer() const noexcept { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

  /// Write the buffer to a file; throws SerializeError on I/O failure.
  void save(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Load a whole file; throws SerializeError if unreadable.
  static std::vector<std::uint8_t> load(const std::string& path);

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_array();
  std::vector<std::uint8_t> read_bytes(std::size_t n);

  std::size_t remaining() const noexcept { return data_.size() - cursor_; }
  bool exhausted() const noexcept { return cursor_ == data_.size(); }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t cursor_ = 0;
};

}  // namespace fifl::util
