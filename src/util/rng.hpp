// Deterministic, splittable random number generation.
//
// Every stochastic component in the simulator (data synthesis, worker
// behaviour, channel loss, market joining) draws from an Rng seeded from a
// single experiment seed, so entire experiments replay bit-identically.
// We implement xoshiro256** (public-domain algorithm by Blackman & Vigna)
// seeded via splitmix64; both are tiny, fast, and have no global state,
// unlike std::mt19937 whose 5 KB state makes per-worker streams costly.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace fifl::util {

/// splitmix64 step: used for seeding and for hashing seeds into streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions, but the members below avoid libstdc++'s distribution
/// implementation differences for cross-platform reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x8424a4a1aull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    cached_gauss_valid_ = false;
  }

  /// Derive an independent stream, e.g. one per worker: `rng.split(worker_id)`.
  [[nodiscard]] Rng split(std::uint64_t stream) const noexcept {
    std::uint64_t sm = state_[0] ^ (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(sm));
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (caches the paired sample).
  double gaussian() noexcept {
    if (cached_gauss_valid_) {
      cached_gauss_valid_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * factor;
    cached_gauss_valid_ = true;
    return u * factor;
  }

  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Fisher-Yates shuffle of [first, first+n).
  template <typename It>
  void shuffle(It first, std::size_t n) noexcept {
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = below(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_gauss_ = 0.0;
  bool cached_gauss_valid_ = false;
};

}  // namespace fifl::util
