// Result reporting for the figure-reproduction benches: an aligned text
// table for stdout (the "same rows/series the paper reports") plus CSV
// export so results can be re-plotted.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace fifl::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with `precision` decimals.
  void add_numeric_row(const std::vector<double>& cells, int precision = 4);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return headers_.size(); }
  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& data() const noexcept {
    return rows_;
  }

  /// Render as an aligned, boxed text table.
  std::string to_text() const;
  /// Render as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  void print(std::ostream& os) const;
  /// Writes CSV to `path`; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals, trimming to a compact form.
std::string format_double(double v, int precision = 4);

/// Render a numeric series as a Unicode sparkline (▁▂▃▄▅▆▇█), scaled to
/// the series' own min/max. NaNs render as spaces. Empty input gives an
/// empty string; a constant series renders at the lowest level.
std::string sparkline(std::span<const double> series);

}  // namespace fifl::util
