#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace fifl::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double c : cells) out.push_back(format_double(c, precision));
  add_row(std::move(out));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_text(); }

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Table: cannot open " + path);
  f << to_csv();
  if (!f) throw std::runtime_error("Table: write failed for " + path);
}

std::string sparkline(std::span<const double> series) {
  static constexpr const char* kLevels[] = {"▁", "▂", "▃",
                                            "▄", "▅", "▆",
                                            "▇", "█"};
  if (series.empty()) return "";
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : series) {
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  if (!(hi >= lo)) {  // all NaN
    out.assign(series.size(), ' ');
    return out;
  }
  const double range = hi - lo;
  for (double v : series) {
    if (std::isnan(v)) {
      out += ' ';
      continue;
    }
    std::size_t level = 0;
    if (range > 0.0) {
      level = static_cast<std::size_t>((v - lo) / range * 7.999);
    }
    out += kLevels[std::min<std::size_t>(level, 7)];
  }
  return out;
}

std::string format_double(double v, int precision) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace fifl::util
