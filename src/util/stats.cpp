#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fifl::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> ranks(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(xs.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg_rank;
    i = j + 1;
  }
  return r;
}
}  // namespace

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("spearman: size mismatch");
  }
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

double gini(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  for (double x : sorted) {
    if (x < 0.0) throw std::invalid_argument("gini: negative value");
  }
  std::sort(sorted.begin(), sorted.end());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total == 0.0) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) * sorted[i];
  }
  return weighted / (n * total);
}

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: bad range or zero bins");
  }
}

void Histogram::add(double x, double weight) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  b = std::clamp<std::ptrdiff_t>(b, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(b)] += weight;
}

double Histogram::bin_lo(std::size_t b) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t b) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(b + 1) /
                   static_cast<double>(counts_.size());
}

double Histogram::total() const noexcept {
  return std::accumulate(counts_.begin(), counts_.end(), 0.0);
}

double Histogram::fraction(std::size_t b) const noexcept {
  const double t = total();
  return t > 0.0 ? counts_[b] / t : 0.0;
}

}  // namespace fifl::util
