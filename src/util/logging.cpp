#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>

#include "util/config.hpp"
#include "util/thread_annotations.hpp"

namespace fifl::util {

namespace {
// Serializes whole log lines onto the shared stderr sink; leaf lock
// with no data members of its own.
Mutex g_sink_mutex;  // lock-order: log_sink

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// FIFL_LOG_LEVEL accepts a level name (case-insensitive: debug, info,
/// warn, error, off) or the numeric enum value 0-4.
LogLevel level_from_env() {
  std::string v = env_string("FIFL_LOG_LEVEL", "");
  if (v.empty()) return LogLevel::kWarn;
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "debug" || v == "0") return LogLevel::kDebug;
  if (v == "info" || v == "1") return LogLevel::kInfo;
  if (v == "warn" || v == "warning" || v == "2") return LogLevel::kWarn;
  if (v == "error" || v == "3") return LogLevel::kError;
  if (v == "off" || v == "none" || v == "4") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{level_from_env()};

using log_clock = std::chrono::steady_clock;
const log_clock::time_point g_start = log_clock::now();

/// Compact per-thread id: threads get 1, 2, ... in first-log order, which
/// reads better than opaque pthread handles when eyeballing interleaved
/// pool output.
unsigned thread_log_id() {
  static std::atomic<unsigned> next{1};
  thread_local const unsigned id = next.fetch_add(1);
  return id;
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const double seconds =
      std::chrono::duration<double>(log_clock::now() - g_start).count();
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[%10.4f t%02u %-5s] ", seconds,
                thread_log_id(), level_name(level));
  const MutexLock lock(g_sink_mutex);
  std::cerr << prefix << message << '\n';
}

}  // namespace fifl::util
