// Blocked parallel-for on top of ThreadPool, in the style of an OpenMP
// `parallel for schedule(static)`: the index range is split into one
// contiguous chunk per pool thread, so per-chunk work stays cache-friendly
// and false sharing across chunk boundaries is minimal.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <future>
#include <vector>

#include "util/thread_pool.hpp"

namespace fifl::util {

/// Runs body(i) for i in [begin, end) across the global pool.
/// `grain` is the minimum chunk size below which we run serially.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  std::size_t grain = 1024) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t max_chunks = std::max<std::size_t>(1, pool.size());
  const std::size_t chunks =
      std::min(max_chunks, std::max<std::size_t>(1, n / std::max<std::size_t>(1, grain)));
  if (chunks <= 1 || ThreadPool::in_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Parallel map-reduce: reduces body(i) over [begin,end) with `combine`,
/// starting from `init`. Reduction order is deterministic (chunk order).
template <typename T, typename Body, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T init, const Body& body,
                  const Combine& combine, std::size_t grain = 1024) {
  if (end <= begin) return init;
  const std::size_t n = end - begin;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t max_chunks = std::max<std::size_t>(1, pool.size());
  const std::size_t chunks =
      std::min(max_chunks, std::max<std::size_t>(1, n / std::max<std::size_t>(1, grain)));
  if (chunks <= 1 || ThreadPool::in_worker_thread()) {
    T acc = init;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, body(i));
    return acc;
  }
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<T>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(pool.submit([lo, hi, init, &body, &combine]() -> T {
      T acc = init;
      for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, body(i));
      return acc;
    }));
  }
  T acc = init;
  for (auto& f : futures) acc = combine(acc, f.get());
  return acc;
}

}  // namespace fifl::util
