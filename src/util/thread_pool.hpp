// Fixed-size work-stealing-free thread pool used by parallel_for and the
// federated-learning simulator (one task per worker per round).
//
// Design notes (cf. C++ Core Guidelines CP.*): the pool owns its threads
// (RAII — the destructor joins), tasks are type-erased move-only callables,
// and all cross-thread communication goes through one mutex + condvar; at
// the task granularity used here (whole matmul tiles / whole local training
// passes) queue contention is negligible.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace fifl::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task and get a future for its result.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         ... captured = std::forward<Args>(args)]() mutable -> R {
          return std::invoke(std::move(fn), std::move(captured)...);
        });
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Process-wide shared pool (lazily constructed, sized to the machine).
  static ThreadPool& global();

  /// True when the calling thread is one of *any* pool's workers. Nested
  /// data-parallel regions (e.g. a matmul inside a per-worker training
  /// task) use this to degrade to serial execution instead of submitting
  /// chunks that no free thread could ever run (deadlock avoidance).
  static bool in_worker_thread() noexcept;

 private:
  void worker_loop();

  // `workers_` is main-thread-only (filled in the ctor, joined in the
  // dtor after the stop flag is published), so it stays unguarded.
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  // CV-paired, so this stays std::mutex (std::unique_lock is invisible
  // to Clang TSA); fifl-lint R7/R8 are the checkers for this pair.
  std::mutex mutex_;  // lock-order: thread_pool; guards queue_, stopping_
  std::condition_variable cv_;  // lock-order: thread_pool
  bool stopping_ = false;
};

}  // namespace fifl::util
