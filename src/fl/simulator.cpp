#include "fl/simulator.hpp"

#include <cmath>
#include <future>
#include <numeric>
#include <limits>
#include <stdexcept>

#include "data/partition.hpp"
#include "obs/scoped_timer.hpp"
#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace fifl::fl {

FederationInit make_federation_init(const SimulatorConfig& config,
                                    const ModelFactory& factory,
                                    std::vector<WorkerSetup> workers) {
  if (workers.empty()) {
    throw std::invalid_argument("make_federation_init: no workers");
  }
  FederationInit init;
  util::Rng rng(config.seed);
  init.global_model = factory(rng);
  if (!init.global_model) {
    throw std::invalid_argument("make_federation_init: null global model");
  }
  init.param_count = init.global_model->parameter_count();

  init.workers.reserve(workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    WorkerConfig wc;
    wc.id = static_cast<chain::NodeId>(i);
    wc.local_iterations = config.local_iterations;
    wc.batch_size = config.batch_size;
    wc.learning_rate = config.learning_rate;
    // Per-worker streams are split by worker index, never by thread or
    // arrival order: worker i's gradient sequence is a pure function of
    // (seed, i, round), however the pool schedules it or however its
    // uploads interleave on the wire.
    init.workers.push_back(std::make_unique<Worker>(
        wc, std::move(workers[i].shard), std::move(workers[i].behaviour),
        factory, rng.split(1000 + i)));
  }
  return init;
}

void apply_gradient_step(nn::Sequential& model, const Gradient& gradient,
                         double learning_rate) {
  std::vector<float> params = model.flatten_parameters();
  if (params.size() != gradient.size()) {
    throw std::invalid_argument("apply_gradient_step: size mismatch");
  }
  const auto lr = static_cast<float>(learning_rate);
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] -= lr * gradient[i];
  }
  model.load_parameters(params);
}

Simulator::Simulator(SimulatorConfig config, const ModelFactory& factory,
                     std::vector<WorkerSetup> workers, data::Dataset test_set)
    : config_(config), test_set_(std::move(test_set)),
      channel_(config.channel_drop_prob, util::Rng(config.seed ^ 0xc4a1ull)) {
  test_set_.validate();

  auto& metrics = obs::MetricsRegistry::global();
  local_train_hist_ = &metrics.histogram("sim.local_train_ms");
  channel_hist_ = &metrics.histogram("sim.channel_ms");
  rounds_counter_ = &metrics.counter("sim.rounds");
  uploads_lost_counter_ = &metrics.counter("sim.uploads_lost");

  FederationInit init = make_federation_init(config_, factory, std::move(workers));
  global_model_ = std::move(init.global_model);
  param_count_ = init.param_count;
  workers_ = std::move(init.workers);
}

std::vector<Upload> Simulator::collect_uploads() {
  const std::vector<int> all(workers_.size(), 1);
  return collect_uploads(all);
}

std::vector<Upload> Simulator::collect_uploads(
    std::span<const int> participants) {
  if (participants.size() != workers_.size()) {
    throw std::invalid_argument("Simulator: participant mask size mismatch");
  }
  const std::vector<float> params = global_model_->flatten_parameters();
  std::vector<Upload> uploads(workers_.size());

  {
    obs::ScopedTimer train_timer(*local_train_hist_);
    auto& pool = util::ThreadPool::global();
    std::vector<std::future<void>> futures;
    futures.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!participants[i]) {
        uploads[i].worker = workers_[i]->id();
        uploads[i].samples = workers_[i]->samples();
        uploads[i].arrived = false;
        continue;
      }
      futures.push_back(pool.submit([this, i, &params, &uploads] {
        uploads[i] = workers_[i]->make_upload(params);
      }));
    }
    for (auto& f : futures) f.get();
    phase_times_.local_train_ms = train_timer.stop();
  }

  {
    obs::ScopedTimer channel_timer(*channel_hist_);
    for (std::size_t i = 0; i < uploads.size(); ++i) {
      if (participants[i]) {
        channel_.transmit(uploads[i]);
        if (!uploads[i].arrived) uploads_lost_counter_->inc();
      }
    }
    phase_times_.channel_ms = channel_timer.stop();
  }
  rounds_counter_->inc();
  ++round_;
  return uploads;
}

std::vector<int> Simulator::sample_participants(double fraction,
                                                util::Rng& rng) const {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("Simulator: participation fraction outside (0,1]");
  }
  const std::size_t n = workers_.size();
  const auto take = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(fraction * static_cast<double>(n))));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order.begin(), order.size());
  std::vector<int> mask(n, 0);
  for (std::size_t k = 0; k < take; ++k) mask[order[k]] = 1;
  return mask;
}

Gradient Simulator::aggregate(std::span<const Upload> uploads,
                              std::span<const int> accept) const {
  if (uploads.size() != accept.size()) {
    throw std::invalid_argument("Simulator::aggregate: mask size mismatch");
  }
  Gradient out(param_count_);
  double total_weight = 0.0;
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    if (!accept[i] || !uploads[i].arrived) continue;
    total_weight += static_cast<double>(uploads[i].samples);
  }
  if (total_weight == 0.0) return out;
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    if (!accept[i] || !uploads[i].arrived) continue;
    const auto w = static_cast<float>(
        static_cast<double>(uploads[i].samples) / total_weight);
    out.axpy(w, uploads[i].gradient);
  }
  return out;
}

Gradient Simulator::apply_round(std::span<const Upload> uploads,
                                std::span<const int> accept) {
  Gradient agg = aggregate(uploads, accept);
  apply_gradient_step(*global_model_, agg, config_.global_learning_rate);
  return agg;
}

Gradient Simulator::apply_round(std::span<const Upload> uploads) {
  std::vector<int> accept(uploads.size(), 1);
  return apply_round(uploads, accept);
}

Evaluation evaluate_model(nn::Sequential& model, const data::Dataset& test_set,
                          std::size_t eval_batch_size) {
  Evaluation result;
  for (const nn::Parameter* p : model.parameters()) {
    if (tensor::has_nonfinite(p->value)) {
      result.loss = std::numeric_limits<double>::quiet_NaN();
      result.accuracy = 1.0 / static_cast<double>(test_set.classes);
      return result;
    }
  }
  const std::size_t n = test_set.size();
  const std::size_t bs = std::min(eval_batch_size, n);
  double loss_sum = 0.0;
  std::size_t correct = 0;
  const std::size_t c = test_set.images.dim(1), h = test_set.images.dim(2),
                    w = test_set.images.dim(3);
  const std::size_t stride = c * h * w;
  nn::SoftmaxCrossEntropy eval_loss;
  for (std::size_t start = 0; start < n; start += bs) {
    const std::size_t count = std::min(bs, n - start);
    tensor::Tensor batch({count, c, h, w});
    for (std::size_t k = 0; k < count; ++k) {
      const float* src = test_set.images.data() + (start + k) * stride;
      float* dst = batch.data() + k * stride;
      for (std::size_t j = 0; j < stride; ++j) dst[j] = src[j];
    }
    std::span<const std::int32_t> labels(test_set.labels.data() + start, count);
    const tensor::Tensor logits = model.forward(batch);
    loss_sum += eval_loss.forward(logits, labels) * static_cast<double>(count);
    correct += static_cast<std::size_t>(
        nn::accuracy(logits, labels) * static_cast<double>(count) + 0.5);
  }
  result.loss = loss_sum / static_cast<double>(n);
  result.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  return result;
}

Evaluation Simulator::evaluate() {
  return evaluate_model(*global_model_, test_set_, config_.eval_batch_size);
}

bool Simulator::model_crashed() {
  for (const nn::Parameter* p : global_model_->parameters()) {
    if (tensor::has_nonfinite(p->value)) return true;
  }
  return false;
}

std::vector<WorkerSetup> make_worker_setups(const data::Dataset& train,
                                            std::vector<BehaviourPtr> behaviours,
                                            util::Rng& rng) {
  if (behaviours.empty()) {
    throw std::invalid_argument("make_worker_setups: no behaviours");
  }
  auto shards = data::partition_iid_equal(train, behaviours.size(), rng);
  std::vector<WorkerSetup> setups;
  setups.reserve(behaviours.size());
  for (std::size_t i = 0; i < behaviours.size(); ++i) {
    setups.push_back(WorkerSetup{std::move(shards[i]), std::move(behaviours[i])});
  }
  return setups;
}

}  // namespace fifl::fl
