// Wire-level gradient/model compression codecs (ROADMAP "Gradient
// compression on the wire").
//
// A Codec names how a float vector travels inside a fifl::net message:
//   kDense  the full f32 array — today's format, byte-identical on the
//           wire, the negotiation fallback every node must support.
//   kTopK   the keep_fraction largest-magnitude entries as sorted
//           (uint32 index, float value) pairs; the receiver densifies
//           (missing entries are zero) before assessment.
//   kDelta  ModelBroadcast only: the parameter slots whose bits changed
//           since the round the receiver last acknowledged, carrying the
//           new absolute values — application is bitwise exact, so a
//           delta-coded broadcast reproduces θ to the bit.
//
// Everything here is deterministic: top-k selection uses a strict total
// order (magnitude desc, index asc on ties) and every SparseVector holds
// its entries in strictly increasing index order, which decode enforces —
// duplicate, out-of-range, or non-monotonic indices are a SerializeError,
// never UB. The replica invariant (DESIGN.md "Determinism invariants")
// therefore survives compression: identical inputs encode to identical
// bytes and decode to identical vectors on every node.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fl/gradient.hpp"
#include "util/serialize.hpp"

namespace fifl::fl {

enum class Codec : std::uint8_t {
  kDense = 0,
  kTopK = 1,
  kDelta = 2,
};

const char* codec_name(Codec codec);

/// Bit in a Join-time capability mask (worker advertises, lead picks).
constexpr std::uint32_t codec_bit(Codec codec) {
  return 1u << static_cast<std::uint8_t>(codec);
}

inline constexpr std::uint32_t kAllCodecs = codec_bit(Codec::kDense) |
                                            codec_bit(Codec::kTopK) |
                                            codec_bit(Codec::kDelta);

constexpr bool codec_in(std::uint32_t mask, Codec codec) {
  return (mask & codec_bit(codec)) != 0;
}

/// LEB128 varint codec for sparse indices: 1 byte below 128, 2 below
/// 16384, at most 5 for the full u32 range. read rejects overlong and
/// overflowing encodings with SerializeError. Exposed so tests can build
/// hostile sparse payloads byte by byte.
void write_index_varint(util::ByteWriter& w, std::uint32_t value);
std::uint32_t read_index_varint(util::ByteReader& r);
std::size_t index_varint_size(std::uint32_t value) noexcept;

/// Sparse view of a dense float vector: parallel (index, value) arrays —
/// logically sorted (uint32 index, float value) pairs with strictly
/// increasing indices, all < dense_size. The wire layout is u64
/// dense_size, u64 count, then count × (varint index, f32 value) entries
/// in index order; indices travel as absolute LEB128 varints (typically
/// 1-2 bytes at our model sizes), which is what pushes a keep_fraction
/// 0.1 upload past the 5× reduction a fixed u32 index (8 bytes/entry vs
/// 4 bytes/param dense) can never reach.
struct SparseVector {
  std::uint64_t dense_size = 0;
  std::vector<std::uint32_t> indices;
  std::vector<float> values;

  std::size_t size() const noexcept { return indices.size(); }
  /// Exact encoded payload size in bytes (dense-vs-sparse break-even math).
  std::size_t wire_bytes() const noexcept;

  void encode(util::ByteWriter& w) const;
  /// Validating inverse of encode(): rejects truncated payloads, counts
  /// exceeding the remaining bytes or dense_size, out-of-range indices,
  /// and duplicate / non-monotonic index order with SerializeError.
  static SparseVector decode(util::ByteReader& r);

  /// Dense reconstruction; absent entries are zero.
  std::vector<float> densify() const;
  /// Overlays the entries onto `dense` in place (delta application).
  /// Throws std::invalid_argument unless dense.size() == dense_size.
  void apply_to(std::span<float> dense) const;
};

/// Deterministic top-k sparsification: keeps exactly
/// max(1, floor(keep_fraction * size)) entries, chosen by descending
/// magnitude with ties broken toward the lower index (stable), returned
/// in index order. Throws std::invalid_argument for keep_fraction outside
/// (0, 1] or vectors too large for u32 indices.
SparseVector topk_compress(std::span<const float> dense, double keep_fraction);

/// Entries where `next` differs bitwise from `base`, carrying next's
/// values — apply_to(base) reconstructs next exactly (signed zeros and
/// NaN payloads included). Sizes must match.
SparseVector delta_compress(std::span<const float> base,
                            std::span<const float> next);

/// In-place top-k sparsification of a Gradient (zeroes everything outside
/// the kept set). Keeps exactly the topk_compress() selection — moved
/// here from fl/attacks (it is a comms feature, not an attack); the old
/// header forwards to this declaration.
void sparsify_topk(Gradient& gradient, double keep_fraction);

}  // namespace fifl::fl
