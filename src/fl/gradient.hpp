// Flat gradient vectors and the polycentric slice algebra (Sec. 3.2).
//
// A Gradient is the wire representation of one worker's model update: the
// concatenation of all parameter gradients. The polycentric architecture
// splits it into M contiguous slices, one per server: Split(G_i) =
// (g_i^1, ..., g_i^M); servers aggregate per slice and workers Recombine.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fifl::fl {

class Gradient {
 public:
  Gradient() = default;
  explicit Gradient(std::size_t size) : values_(size, 0.0f) {}
  explicit Gradient(std::vector<float> values) : values_(std::move(values)) {}

  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }
  float* data() noexcept { return values_.data(); }
  const float* data() const noexcept { return values_.data(); }
  std::span<float> flat() noexcept { return values_; }
  std::span<const float> flat() const noexcept { return values_; }
  float& operator[](std::size_t i) noexcept { return values_[i]; }
  float operator[](std::size_t i) const noexcept { return values_[i]; }

  void zero() noexcept;
  void scale(float alpha) noexcept;
  /// this += alpha * other (sizes must match; throws otherwise).
  void axpy(float alpha, const Gradient& other);

  double squared_norm() const noexcept;
  double norm() const noexcept;
  bool finite() const noexcept;

 private:
  std::vector<float> values_;
};

/// Boundaries of the M contiguous slices of a length-`size` gradient.
/// Slice j covers [offset(j), offset(j+1)); sizes differ by at most one.
class SlicePlan {
 public:
  SlicePlan() = default;
  SlicePlan(std::size_t gradient_size, std::size_t servers);

  std::size_t servers() const noexcept { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t gradient_size() const noexcept {
    return offsets_.empty() ? 0 : offsets_.back();
  }
  std::size_t offset(std::size_t j) const { return offsets_.at(j); }
  std::size_t slice_size(std::size_t j) const {
    return offsets_.at(j + 1) - offsets_.at(j);
  }

  /// View of slice j of `g` (must have gradient_size() elements).
  std::span<const float> slice(const Gradient& g, std::size_t j) const;
  std::span<float> slice(Gradient& g, std::size_t j) const;

 private:
  std::vector<std::size_t> offsets_;
};

/// Weighted average of gradients: G̃ = Σ w_i G_i / Σ w_i (Eq. 2). Entries
/// with weight 0 are skipped; throws if all weights are 0 or sizes differ.
Gradient weighted_aggregate(std::span<const Gradient> gradients,
                            std::span<const double> weights);

/// Recombine(g̃^1..g̃^M): concatenates slices back into a full gradient.
Gradient recombine(const SlicePlan& plan,
                   const std::vector<std::vector<float>>& slices);

}  // namespace fifl::fl
