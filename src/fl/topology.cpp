#include "fl/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace fifl::fl {

ServerCluster::ServerCluster(std::vector<chain::NodeId> members, SlicePlan plan)
    : members_(std::move(members)), plan_(std::move(plan)) {
  if (members_.empty()) throw std::invalid_argument("ServerCluster: no members");
  if (plan_.servers() != members_.size()) {
    throw std::invalid_argument("ServerCluster: plan/member count mismatch");
  }
}

bool ServerCluster::is_server(chain::NodeId id) const noexcept {
  return std::find(members_.begin(), members_.end(), id) != members_.end();
}

std::optional<std::size_t> ServerCluster::server_index(
    chain::NodeId id) const noexcept {
  const auto it = std::find(members_.begin(), members_.end(), id);
  if (it == members_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - members_.begin());
}

std::vector<std::vector<float>> ServerCluster::benchmark_slices(
    std::span<const Upload> uploads) const {
  std::vector<std::vector<float>> slices(members_.size());
  for (std::size_t j = 0; j < members_.size(); ++j) {
    const chain::NodeId member = members_[j];
    const auto it =
        std::find_if(uploads.begin(), uploads.end(),
                     [member](const Upload& u) { return u.worker == member; });
    if (it == uploads.end() || !it->arrived) {
      throw std::runtime_error(
          "ServerCluster: benchmark upload missing for server " +
          std::to_string(member));
    }
    const auto view = plan_.slice(it->gradient, j);
    slices[j].assign(view.begin(), view.end());
  }
  return slices;
}

Gradient ServerCluster::benchmark_gradient(
    std::span<const Upload> uploads) const {
  return recombine(plan_, benchmark_slices(uploads));
}

void ServerCluster::reselect(std::vector<chain::NodeId> members) {
  if (members.size() != members_.size()) {
    throw std::invalid_argument("ServerCluster::reselect: size change requires new plan");
  }
  members_ = std::move(members);
}

}  // namespace fifl::fl
