#include "fl/comm_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace fifl::fl {

namespace {
void validate(const CommConfig& config) {
  if (config.workers == 0 || config.gradient_size == 0 ||
      config.bytes_per_scalar == 0) {
    throw std::invalid_argument("CommConfig: zero workers/gradient/scalar size");
  }
  if (config.link_bytes_per_second <= 0.0) {
    throw std::invalid_argument("CommConfig: non-positive bandwidth");
  }
}

double seconds_for(std::size_t bytes, const CommConfig& config) {
  return static_cast<double>(bytes) / config.link_bytes_per_second;
}
}  // namespace

CommCost centralized_cost(const CommConfig& config) {
  validate(config);
  const std::size_t gradient_bytes =
      config.gradient_size * config.bytes_per_scalar;
  CommCost cost;
  // N uploads + N downloads, all through the one server.
  cost.total_bytes = 2 * config.workers * gradient_bytes;
  cost.max_node_bytes = cost.total_bytes;  // the server touches every byte
  cost.round_seconds = seconds_for(cost.max_node_bytes, config);
  return cost;
}

CommCost decentralized_cost(const CommConfig& config) {
  validate(config);
  CommConfig mesh = config;
  mesh.servers = config.workers;
  return polycentric_cost(mesh);
}

CommCost polycentric_cost(const CommConfig& config) {
  validate(config);
  if (config.servers == 0 || config.servers > config.workers) {
    throw std::invalid_argument("CommConfig: servers must be in [1, workers]");
  }
  const std::size_t gradient_bytes =
      config.gradient_size * config.bytes_per_scalar;
  const std::size_t slice_bytes =
      (gradient_bytes + config.servers - 1) / config.servers;
  CommCost cost;
  // Every worker uploads M slices (= one full gradient split across
  // servers) and downloads M aggregated slices.
  cost.total_bytes = 2 * config.workers * config.servers * slice_bytes;
  // Server j receives one slice from each of N workers and broadcasts the
  // aggregated slice back: 2·N·(d/M) — the per-node bottleneck shrinks
  // linearly in M, which is the paper's Sec. 3.2 point.
  const std::size_t server_bytes = 2 * config.workers * slice_bytes;
  // A worker moves 2·d in total regardless of M.
  const std::size_t worker_bytes = 2 * config.servers * slice_bytes;
  cost.max_node_bytes = std::max(server_bytes, worker_bytes);
  cost.round_seconds = seconds_for(cost.max_node_bytes, config);
  return cost;
}

std::string architecture_name(std::size_t servers, std::size_t workers) {
  if (servers <= 1) return "centralized";
  if (servers >= workers) return "decentralized";
  return "polycentric(M=" + std::to_string(servers) + ")";
}

}  // namespace fifl::fl
