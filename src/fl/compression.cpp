#include "fl/compression.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace fifl::fl {

const char* codec_name(Codec codec) {
  switch (codec) {
    case Codec::kDense: return "dense";
    case Codec::kTopK: return "topk";
    case Codec::kDelta: return "delta";
  }
  return "unknown";
}

namespace {

std::size_t checked_keep_count(std::size_t size, double keep_fraction) {
  if (!(keep_fraction > 0.0) || keep_fraction > 1.0) {
    throw std::invalid_argument("topk: keep_fraction outside (0,1]");
  }
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(keep_fraction * static_cast<double>(size)));
}

void check_indexable(std::size_t size, const char* what) {
  if (size > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(std::string(what) +
                                ": vector too large for u32 sparse indices");
  }
}

}  // namespace

void write_index_varint(util::ByteWriter& w, std::uint32_t value) {
  while (value >= 0x80) {
    w.write_u8(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  w.write_u8(static_cast<std::uint8_t>(value));
}

std::uint32_t read_index_varint(util::ByteReader& r) {
  std::uint32_t value = 0;
  for (unsigned shift = 0; shift < 35; shift += 7) {
    const std::uint8_t byte = r.read_u8();
    const std::uint32_t chunk = byte & 0x7Fu;
    if (shift == 28 && chunk > 0x0Fu) {
      throw util::SerializeError("sparse: varint index overflows u32");
    }
    value |= chunk << shift;
    if ((byte & 0x80u) == 0) return value;
  }
  throw util::SerializeError("sparse: varint index longer than 5 bytes");
}

std::size_t index_varint_size(std::uint32_t value) noexcept {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

std::size_t SparseVector::wire_bytes() const noexcept {
  std::size_t total = 16 + 4 * indices.size();
  for (const std::uint32_t idx : indices) total += index_varint_size(idx);
  return total;
}

void SparseVector::encode(util::ByteWriter& w) const {
  w.write_u64(dense_size);
  w.write_u64(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    write_index_varint(w, indices[i]);
    w.write_f32(values[i]);
  }
}

SparseVector SparseVector::decode(util::ByteReader& r) {
  // Minimum entry size: a 1-byte varint index + the f32 value.
  constexpr std::uint64_t kMinEntryBytes = 1 + 4;
  SparseVector s;
  s.dense_size = r.read_u64();
  const std::uint64_t n = r.read_u64();
  // Count guards run before any allocation sized by attacker-controlled
  // numbers; the index checks below make densify()/apply_to() safe.
  if (n > r.remaining() / kMinEntryBytes) {
    throw util::SerializeError("sparse: entry count exceeds payload");
  }
  if (n > s.dense_size) {
    throw util::SerializeError("sparse: more entries than dense size");
  }
  s.indices.resize(static_cast<std::size_t>(n));
  s.values.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < s.indices.size(); ++i) {
    const std::uint32_t idx = read_index_varint(r);
    if (idx >= s.dense_size) {
      throw util::SerializeError("sparse: index " + std::to_string(idx) +
                                 " out of range");
    }
    if (i > 0 && idx <= s.indices[i - 1]) {
      throw util::SerializeError(
          "sparse: indices must be strictly increasing");
    }
    s.indices[i] = idx;
    s.values[i] = r.read_f32();
  }
  return s;
}

std::vector<float> SparseVector::densify() const {
  std::vector<float> out(static_cast<std::size_t>(dense_size), 0.0f);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[indices[i]] = values[i];
  }
  return out;
}

void SparseVector::apply_to(std::span<float> dense) const {
  if (dense.size() != dense_size) {
    throw std::invalid_argument("sparse: apply_to size mismatch");
  }
  for (std::size_t i = 0; i < indices.size(); ++i) {
    dense[indices[i]] = values[i];
  }
}

SparseVector topk_compress(std::span<const float> dense,
                           double keep_fraction) {
  check_indexable(dense.size(), "topk");
  SparseVector s;
  s.dense_size = dense.size();
  if (dense.empty()) {
    (void)checked_keep_count(1, keep_fraction);  // still validate the fraction
    return s;
  }
  const std::size_t keep = checked_keep_count(dense.size(), keep_fraction);
  std::vector<std::uint32_t> order(dense.size());
  std::iota(order.begin(), order.end(), 0u);
  // Strict total order — larger magnitude first, equal magnitudes resolved
  // by lower index — so the kept set is unique and replica-independent.
  const auto better = [&dense](std::uint32_t a, std::uint32_t b) {
    const float ma = std::fabs(dense[a]);
    const float mb = std::fabs(dense[b]);
    if (ma != mb) return ma > mb;
    return a < b;
  };
  if (keep < order.size()) {
    std::nth_element(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(keep),
                     order.end(), better);
    order.resize(keep);
  }
  std::sort(order.begin(), order.end());
  s.values.reserve(order.size());
  for (const std::uint32_t idx : order) s.values.push_back(dense[idx]);
  s.indices = std::move(order);
  return s;
}

SparseVector delta_compress(std::span<const float> base,
                            std::span<const float> next) {
  if (base.size() != next.size()) {
    throw std::invalid_argument("delta: base/next size mismatch");
  }
  check_indexable(next.size(), "delta");
  SparseVector s;
  s.dense_size = next.size();
  for (std::size_t i = 0; i < next.size(); ++i) {
    // Bitwise comparison: reconstruction must be exact, including signed
    // zeros and NaN payloads, or the replica hashes fork.
    if (std::bit_cast<std::uint32_t>(base[i]) !=
        std::bit_cast<std::uint32_t>(next[i])) {
      s.indices.push_back(static_cast<std::uint32_t>(i));
      s.values.push_back(next[i]);
    }
  }
  return s;
}

void sparsify_topk(Gradient& gradient, double keep_fraction) {
  if (!(keep_fraction > 0.0) || keep_fraction > 1.0) {
    throw std::invalid_argument("sparsify_topk: keep_fraction outside (0,1]");
  }
  if (keep_fraction >= 1.0 || gradient.empty()) return;
  const SparseVector kept = topk_compress(gradient.flat(), keep_fraction);
  gradient.zero();
  for (std::size_t i = 0; i < kept.indices.size(); ++i) {
    gradient[kept.indices[i]] = kept.values[i];
  }
}

}  // namespace fifl::fl
