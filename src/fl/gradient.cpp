#include "fl/gradient.hpp"

#include <cmath>
#include <stdexcept>

namespace fifl::fl {

void Gradient::zero() noexcept {
  for (auto& v : values_) v = 0.0f;
}

void Gradient::scale(float alpha) noexcept {
  for (auto& v : values_) v *= alpha;
}

void Gradient::axpy(float alpha, const Gradient& other) {
  if (other.size() != size()) {
    throw std::invalid_argument("Gradient::axpy: size mismatch");
  }
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] += alpha * other.values_[i];
  }
}

double Gradient::squared_norm() const noexcept {
  double acc = 0.0;
  for (float v : values_) acc += static_cast<double>(v) * static_cast<double>(v);
  return acc;
}

double Gradient::norm() const noexcept { return std::sqrt(squared_norm()); }

bool Gradient::finite() const noexcept {
  for (float v : values_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

SlicePlan::SlicePlan(std::size_t gradient_size, std::size_t servers) {
  if (servers == 0) throw std::invalid_argument("SlicePlan: zero servers");
  if (gradient_size < servers) {
    throw std::invalid_argument("SlicePlan: more servers than gradient entries");
  }
  offsets_.resize(servers + 1);
  const std::size_t base = gradient_size / servers;
  const std::size_t extra = gradient_size % servers;
  offsets_[0] = 0;
  for (std::size_t j = 0; j < servers; ++j) {
    offsets_[j + 1] = offsets_[j] + base + (j < extra ? 1 : 0);
  }
}

std::span<const float> SlicePlan::slice(const Gradient& g, std::size_t j) const {
  if (g.size() != gradient_size()) {
    throw std::invalid_argument("SlicePlan::slice: gradient size mismatch");
  }
  return g.flat().subspan(offset(j), slice_size(j));
}

std::span<float> SlicePlan::slice(Gradient& g, std::size_t j) const {
  if (g.size() != gradient_size()) {
    throw std::invalid_argument("SlicePlan::slice: gradient size mismatch");
  }
  return g.flat().subspan(offset(j), slice_size(j));
}

Gradient weighted_aggregate(std::span<const Gradient> gradients,
                            std::span<const double> weights) {
  if (gradients.size() != weights.size()) {
    throw std::invalid_argument("weighted_aggregate: count mismatch");
  }
  double total = 0.0;
  std::size_t size = 0;
  for (std::size_t i = 0; i < gradients.size(); ++i) {
    if (weights[i] < 0.0) {
      throw std::invalid_argument("weighted_aggregate: negative weight");
    }
    if (weights[i] == 0.0) continue;
    if (size == 0) {
      size = gradients[i].size();
    } else if (gradients[i].size() != size) {
      throw std::invalid_argument("weighted_aggregate: size mismatch");
    }
    total += weights[i];
  }
  if (total == 0.0 || size == 0) {
    throw std::invalid_argument("weighted_aggregate: all weights zero");
  }
  Gradient out(size);
  for (std::size_t i = 0; i < gradients.size(); ++i) {
    if (weights[i] == 0.0) continue;
    out.axpy(static_cast<float>(weights[i] / total), gradients[i]);
  }
  return out;
}

Gradient recombine(const SlicePlan& plan,
                   const std::vector<std::vector<float>>& slices) {
  if (slices.size() != plan.servers()) {
    throw std::invalid_argument("recombine: slice count mismatch");
  }
  Gradient out(plan.gradient_size());
  for (std::size_t j = 0; j < slices.size(); ++j) {
    if (slices[j].size() != plan.slice_size(j)) {
      throw std::invalid_argument("recombine: slice size mismatch");
    }
    auto dst = plan.slice(out, j);
    for (std::size_t k = 0; k < dst.size(); ++k) dst[k] = slices[j][k];
  }
  return out;
}

}  // namespace fifl::fl
