// Polycentric server cluster (Sec. 3.2 / Fig. 1).
//
// M of the N devices also act as servers; server j owns gradient slice j.
// M = 1 degenerates to the centralized architecture, M = N to the
// decentralized one — the paper's generalisation claim, which our tests
// exercise directly. The cluster also produces the per-server *benchmark
// slices* used by attack detection: server j's benchmark is slice j of its
// own local gradient (servers are workers too, S ⊂ W).
#pragma once

#include <optional>
#include <vector>

#include "chain/signature.hpp"
#include "fl/gradient.hpp"
#include "fl/worker.hpp"

namespace fifl::fl {

class ServerCluster {
 public:
  /// `members` are worker ids currently acting as servers; slice layout
  /// comes from `plan` (plan.servers() must equal members.size()).
  ServerCluster(std::vector<chain::NodeId> members, SlicePlan plan);

  std::size_t size() const noexcept { return members_.size(); }
  const std::vector<chain::NodeId>& members() const noexcept { return members_; }
  const SlicePlan& plan() const noexcept { return plan_; }
  bool is_server(chain::NodeId id) const noexcept;
  /// Server index (0..M-1) of a member id, if it is one.
  std::optional<std::size_t> server_index(chain::NodeId id) const noexcept;

  /// Benchmark slices for detection: slice j of server j's own upload.
  /// Throws if any member's upload is missing or did not arrive.
  std::vector<std::vector<float>> benchmark_slices(
      std::span<const Upload> uploads) const;

  /// Whole-gradient benchmark G = Recombine(benchmark slices).
  Gradient benchmark_gradient(std::span<const Upload> uploads) const;

  /// Replace the membership (reputation-based re-selection, Sec. 4.5).
  void reselect(std::vector<chain::NodeId> members);

 private:
  std::vector<chain::NodeId> members_;
  SlicePlan plan_;
};

}  // namespace fifl::fl
