// Lossy uplink model. A dropped upload becomes an "uncertain event" in the
// reputation module's subjective-logic triple (Su, Sec. 4.2); it is
// excluded from aggregation and from positive/negative event counting.
#pragma once

#include "fl/worker.hpp"
#include "util/rng.hpp"

namespace fifl::fl {

class Channel {
 public:
  /// drop_prob: iid probability that any single upload is lost in transit.
  explicit Channel(double drop_prob, util::Rng rng);

  double drop_probability() const noexcept { return drop_prob_; }

  /// Marks the upload dropped with probability drop_prob.
  void transmit(Upload& upload);

  std::size_t transmitted() const noexcept { return transmitted_; }
  std::size_t dropped() const noexcept { return dropped_; }

 private:
  double drop_prob_;
  util::Rng rng_;
  std::size_t transmitted_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace fifl::fl
