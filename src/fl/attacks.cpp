#include "fl/attacks.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "data/noise.hpp"

namespace fifl::fl {

SignFlipBehaviour::SignFlipBehaviour(double intensity) : intensity_(intensity) {
  if (intensity <= 0.0) {
    throw std::invalid_argument("SignFlipBehaviour: intensity must be > 0");
  }
}

Gradient SignFlipBehaviour::transform(Gradient honest, util::Rng&) {
  honest.scale(static_cast<float>(-intensity_));
  return honest;
}

std::string SignFlipBehaviour::name() const {
  return "sign_flip(p_s=" + std::to_string(intensity_) + ")";
}

DataPoisonBehaviour::DataPoisonBehaviour(double p_d) : p_d_(p_d) {
  if (p_d < 0.0 || p_d > 1.0) {
    throw std::invalid_argument("DataPoisonBehaviour: p_d outside [0,1]");
  }
}

data::Dataset DataPoisonBehaviour::prepare_data(const data::Dataset& shard,
                                                util::Rng& rng) {
  return data::poison_labels(shard, p_d_, rng);
}

std::string DataPoisonBehaviour::name() const {
  return "data_poison(p_d=" + std::to_string(p_d_) + ")";
}

FreeRiderBehaviour::FreeRiderBehaviour(double noise) : noise_(noise) {
  if (noise < 0.0) throw std::invalid_argument("FreeRiderBehaviour: noise < 0");
}

Gradient FreeRiderBehaviour::transform(Gradient honest, util::Rng& rng) {
  // `honest` is a zero gradient here (skips_training() == true); fill with
  // the camouflage noise if requested.
  if (noise_ > 0.0) {
    for (std::size_t i = 0; i < honest.size(); ++i) {
      honest[i] = static_cast<float>(rng.gaussian(0.0, noise_));
    }
  } else {
    honest.zero();
  }
  return honest;
}

GaussianNoiseBehaviour::GaussianNoiseBehaviour(double sigma) : sigma_(sigma) {
  if (sigma <= 0.0) {
    throw std::invalid_argument("GaussianNoiseBehaviour: sigma must be > 0");
  }
}

Gradient GaussianNoiseBehaviour::transform(Gradient honest, util::Rng& rng) {
  for (std::size_t i = 0; i < honest.size(); ++i) {
    honest[i] = static_cast<float>(rng.gaussian(0.0, sigma_));
  }
  return honest;
}

SparsifyingBehaviour::SparsifyingBehaviour(double keep_fraction)
    : keep_(keep_fraction) {
  if (keep_fraction <= 0.0 || keep_fraction > 1.0) {
    throw std::invalid_argument("SparsifyingBehaviour: keep_fraction outside (0,1]");
  }
}

Gradient SparsifyingBehaviour::transform(Gradient honest, util::Rng&) {
  sparsify_topk(honest, keep_);
  return honest;
}

std::string SparsifyingBehaviour::name() const {
  return "sparsify(keep=" + std::to_string(keep_) + ")";
}

ProbabilisticBehaviour::ProbabilisticBehaviour(double p_attack,
                                               BehaviourPtr inner)
    : p_attack_(p_attack), inner_(std::move(inner)) {
  if (p_attack < 0.0 || p_attack > 1.0) {
    throw std::invalid_argument("ProbabilisticBehaviour: p_attack outside [0,1]");
  }
  if (!inner_) throw std::invalid_argument("ProbabilisticBehaviour: null inner");
}

data::Dataset ProbabilisticBehaviour::prepare_data(const data::Dataset& shard,
                                                   util::Rng& rng) {
  // Data corruption (if the inner attack uses it) is applied once at
  // setup, matching how a device's local data is fixed across rounds.
  return inner_->prepare_data(shard, rng);
}

Gradient ProbabilisticBehaviour::transform(Gradient honest, util::Rng& rng) {
  attacked_ = rng.bernoulli(p_attack_);
  if (!attacked_) return honest;
  return inner_->transform(std::move(honest), rng);
}

std::string ProbabilisticBehaviour::name() const {
  return "probabilistic(p_a=" + std::to_string(p_attack_) + ", " +
         inner_->name() + ")";
}

}  // namespace fifl::fl
