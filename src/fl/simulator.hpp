// Round-based federated learning simulator (Sec. 3.1 training loop).
//
// Each round: (1) all workers train locally from the broadcast global
// parameters — in parallel, one pool task per worker; (2) uploads pass
// through the lossy channel; (3) the caller decides an acceptance mask
// (plain FedAvg accepts everything that arrived; FIFL's detection module
// rejects attackers) and the simulator aggregates per Eq. 2 and steps the
// global model per Eq. 3.
//
// Keeping the accept-mask decision *outside* the simulator is the seam
// that lets the same mechanics run FedAvg baselines and FIFL side by side.
#pragma once

#include <memory>
#include <vector>

#include "fl/channel.hpp"
#include "fl/topology.hpp"
#include "fl/worker.hpp"
#include "obs/metrics.hpp"

namespace fifl::fl {

struct SimulatorConfig {
  std::size_t local_iterations = 1;   // K
  std::size_t batch_size = 32;
  double learning_rate = 0.05;        // worker-local η
  double global_learning_rate = 0.05; // η in Eq. 3
  double channel_drop_prob = 0.0;
  std::size_t eval_batch_size = 256;
  std::uint64_t seed = 1;
};

struct WorkerSetup {
  data::Dataset shard;
  BehaviourPtr behaviour;
};

struct Evaluation {
  double loss = 0.0;
  double accuracy = 0.0;
};

/// Wall-times of the last collect_uploads() call, split by phase. Also
/// fed into the global metrics registry ("sim.local_train_ms" /
/// "sim.channel_ms" histograms) for aggregate views.
struct SimPhaseTimes {
  double local_train_ms = 0.0;  // parallel local training fan-out/join
  double channel_ms = 0.0;      // lossy-channel transmission
};

/// The deterministic construction shared by the in-process Simulator and
/// the fifl::net cluster: global model from Rng(seed), then workers with
/// streams split off the post-factory state. Both runtimes call this one
/// function, which is what makes a networked run reproduce a simulator
/// run bit-for-bit on the same seed.
struct FederationInit {
  std::unique_ptr<nn::Sequential> global_model;
  std::vector<std::unique_ptr<Worker>> workers;
  std::size_t param_count = 0;
};

FederationInit make_federation_init(const SimulatorConfig& config,
                                    const ModelFactory& factory,
                                    std::vector<WorkerSetup> workers);

/// θ ← θ − η·G̃ (Eq. 3), the single global-step implementation both the
/// Simulator and net::ServerNode use (same float ops, same order).
void apply_gradient_step(nn::Sequential& model, const Gradient& gradient,
                         double learning_rate);

/// Test loss/accuracy of `model` over `test_set` in batches; NaN loss and
/// chance-level accuracy when parameters are non-finite.
Evaluation evaluate_model(nn::Sequential& model, const data::Dataset& test_set,
                          std::size_t eval_batch_size);

class Simulator {
 public:
  Simulator(SimulatorConfig config, const ModelFactory& factory,
            std::vector<WorkerSetup> workers, data::Dataset test_set);

  std::size_t worker_count() const noexcept { return workers_.size(); }
  Worker& worker(std::size_t i) { return *workers_.at(i); }
  const Worker& worker(std::size_t i) const { return *workers_.at(i); }
  nn::Sequential& global_model() noexcept { return *global_model_; }
  std::size_t parameter_count() const noexcept { return param_count_; }
  std::uint64_t round() const noexcept { return round_; }
  const data::Dataset& test_set() const noexcept { return test_set_; }
  const SimPhaseTimes& last_phase_times() const noexcept { return phase_times_; }

  /// Phase 1+2: parallel local training, then channel transmission.
  /// Uploads are ordered by worker index.
  std::vector<Upload> collect_uploads();

  /// Partial participation: only workers with participants[i] != 0 train
  /// and transmit; the rest produce absent uploads (arrived = false,
  /// empty gradient) without spending any compute — downstream they are
  /// "uncertain events", exactly like channel losses.
  std::vector<Upload> collect_uploads(std::span<const int> participants);

  /// Uniformly samples ceil(fraction·N) participants (at least 1).
  std::vector<int> sample_participants(double fraction, util::Rng& rng) const;

  /// Phase 3: aggregate uploads i with accept[i] != 0 weighted by n_i
  /// (Eq. 2 with the r_i mask of Eq. 7) and apply θ ← θ − η·G̃ (Eq. 3).
  /// Returns G̃. If nothing is accepted the round is a no-op (zero G̃).
  Gradient apply_round(std::span<const Upload> uploads,
                       std::span<const int> accept);

  /// FedAvg: accept every upload that arrived.
  Gradient apply_round(std::span<const Upload> uploads);

  /// Aggregate without stepping the model (used by analysis benches).
  Gradient aggregate(std::span<const Upload> uploads,
                     std::span<const int> accept) const;

  /// Test loss/accuracy of the current global model. If the model has
  /// diverged to non-finite parameters, returns {NaN, chance-level}.
  Evaluation evaluate();

  /// True once any global parameter is NaN/Inf (the paper's p_s >= 10
  /// crash mode, Fig. 7a). Non-const because parameter access goes
  /// through the (stateful) layer interface.
  bool model_crashed();

 private:
  SimulatorConfig config_;
  std::unique_ptr<nn::Sequential> global_model_;
  std::size_t param_count_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  data::Dataset test_set_;
  Channel channel_;
  std::uint64_t round_ = 0;
  SimPhaseTimes phase_times_;
  // Metrics handles resolved once (registry references are stable).
  obs::Histogram* local_train_hist_ = nullptr;
  obs::Histogram* channel_hist_ = nullptr;
  obs::Counter* rounds_counter_ = nullptr;
  obs::Counter* uploads_lost_counter_ = nullptr;
};

/// Convenience: WorkerSetup list with the given behaviours over an iid
/// equal split of `train`; behaviours.size() defines the worker count.
std::vector<WorkerSetup> make_worker_setups(const data::Dataset& train,
                                            std::vector<BehaviourPtr> behaviours,
                                            util::Rng& rng);

}  // namespace fifl::fl
