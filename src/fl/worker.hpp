// A federated worker: owns a private data shard, a local model replica,
// and a Behaviour that decides what actually gets uploaded.
//
// Local training follows the paper's Sec. 3.1: starting from the global
// parameters θ_t the worker runs K minibatch steps with learning rate η
// and uploads the accumulated gradient G_i = (θ_t − θ_{t,K}) / η, which
// equals the sum of the per-step gradients it descended along.
#pragma once

#include <functional>
#include <memory>

#include "chain/signature.hpp"
#include "data/dataset.hpp"
#include "fl/attacks.hpp"
#include "fl/gradient.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"

namespace fifl::fl {

using ModelFactory = std::function<std::unique_ptr<nn::Sequential>(util::Rng&)>;

struct WorkerConfig {
  chain::NodeId id = 0;
  std::size_t local_iterations = 1;  // K
  std::size_t batch_size = 32;
  double learning_rate = 0.05;       // η for local steps
};

/// One round's upload as seen by the servers.
struct Upload {
  chain::NodeId worker = 0;
  std::size_t samples = 0;  // n_i (self-reported; honest in our simulator)
  Gradient gradient;
  bool arrived = true;          // false => "uncertain event" (Sec. 4.2)
  bool ground_truth_attack = false;  // oracle label for detection metrics
};

class Worker {
 public:
  /// `shard` is the worker's raw local data; the behaviour may corrupt it
  /// (data poisoning) before training ever starts.
  Worker(WorkerConfig config, data::Dataset shard, BehaviourPtr behaviour,
         const ModelFactory& factory, util::Rng rng);

  chain::NodeId id() const noexcept { return config_.id; }
  std::size_t samples() const noexcept { return data_.size(); }
  const Behaviour& behaviour() const noexcept { return *behaviour_; }

  /// K local SGD steps from `global_params`; returns the honest
  /// accumulated gradient (no behaviour applied).
  Gradient compute_local_gradient(std::span<const float> global_params);

  /// Full upload path: honest gradient (or zero for free-riders), then the
  /// behaviour transform. Thread-safe across *different* workers.
  Upload make_upload(std::span<const float> global_params);

 private:
  WorkerConfig config_;
  data::Dataset data_;
  BehaviourPtr behaviour_;
  std::unique_ptr<nn::Sequential> model_;
  std::unique_ptr<data::BatchLoader> loader_;
  nn::SoftmaxCrossEntropy loss_;
  util::Rng rng_;
};

}  // namespace fifl::fl
