// Worker behaviours: the honest baseline and the attacker models evaluated
// in the paper (Sec. 5.1) plus two standard extras used in our extension
// experiments.
//
//  - SignFlip (p_s): G -> -p_s * G                      [Zeno++ attack]
//  - DataPoison (p_d): trains honestly on a label-corrupted shard
//  - FreeRider: uploads a fabricated (zero or tiny-noise) gradient
//  - GaussianNoise (sigma): uploads pure noise
//  - Probabilistic (p_a): attacks with probability p_a per round, honest
//    otherwise — the worker model behind the reputation figure (Fig. 11)
//
// A Behaviour transforms the honestly computed gradient (or replaces it);
// DataPoison instead transforms the training data, so it hooks
// prepare_data(). This split mirrors the paper's taxonomy: model-update
// attacks vs. data attacks.
#pragma once

#include <memory>
#include <string>

#include "data/dataset.hpp"
#include "fl/compression.hpp"  // forwards sparsify_topk (moved there)
#include "fl/gradient.hpp"
#include "util/rng.hpp"

namespace fifl::fl {

class Behaviour {
 public:
  virtual ~Behaviour() = default;

  /// Transform the worker's local shard before training (default: none).
  virtual data::Dataset prepare_data(const data::Dataset& shard,
                                     util::Rng& rng) {
    (void)rng;
    return shard;
  }

  /// Transform (or replace) the honestly computed gradient for upload.
  virtual Gradient transform(Gradient honest, util::Rng& rng) {
    (void)rng;
    return honest;
  }

  /// True if this behaviour skips local training entirely (free-riders) —
  /// the simulator then hands transform() a zero gradient.
  virtual bool skips_training() const { return false; }

  /// Whether this round's upload was malicious (for ground-truth
  /// labelling of detection accuracy). Called after transform().
  virtual bool attacked_last_round() const { return false; }

  virtual std::string name() const = 0;
};

using BehaviourPtr = std::unique_ptr<Behaviour>;

class HonestBehaviour final : public Behaviour {
 public:
  std::string name() const override { return "honest"; }
};

class SignFlipBehaviour final : public Behaviour {
 public:
  explicit SignFlipBehaviour(double intensity);
  Gradient transform(Gradient honest, util::Rng& rng) override;
  bool attacked_last_round() const override { return true; }
  std::string name() const override;
  double intensity() const noexcept { return intensity_; }

 private:
  double intensity_;
};

class DataPoisonBehaviour final : public Behaviour {
 public:
  explicit DataPoisonBehaviour(double p_d);
  data::Dataset prepare_data(const data::Dataset& shard,
                             util::Rng& rng) override;
  bool attacked_last_round() const override { return p_d_ > 0.0; }
  std::string name() const override;
  double poison_rate() const noexcept { return p_d_; }

 private:
  double p_d_;
};

class FreeRiderBehaviour final : public Behaviour {
 public:
  /// `noise` > 0 uploads N(0, noise^2) entries instead of exact zeros
  /// (a free-rider trying to look alive).
  explicit FreeRiderBehaviour(double noise = 0.0);
  Gradient transform(Gradient honest, util::Rng& rng) override;
  bool skips_training() const override { return true; }
  bool attacked_last_round() const override { return true; }
  std::string name() const override { return "free_rider"; }

 private:
  double noise_;
};

class GaussianNoiseBehaviour final : public Behaviour {
 public:
  explicit GaussianNoiseBehaviour(double sigma);
  Gradient transform(Gradient honest, util::Rng& rng) override;
  bool attacked_last_round() const override { return true; }
  std::string name() const override { return "gaussian_noise"; }

 private:
  double sigma_;
};

// sparsify_topk lives in fl/compression.hpp now (it is a comms feature,
// not an attack); the include above keeps existing callers compiling.

/// Honest worker that sparsifies its upload to save bandwidth.
class SparsifyingBehaviour final : public Behaviour {
 public:
  explicit SparsifyingBehaviour(double keep_fraction);
  Gradient transform(Gradient honest, util::Rng& rng) override;
  std::string name() const override;
  double keep_fraction() const noexcept { return keep_; }

 private:
  double keep_;
};

/// Wraps an inner attack; each round flips a p_a-coin to decide whether to
/// apply it. Used to emulate unstable attackers (Fig. 11).
class ProbabilisticBehaviour final : public Behaviour {
 public:
  ProbabilisticBehaviour(double p_attack, BehaviourPtr inner);
  data::Dataset prepare_data(const data::Dataset& shard,
                             util::Rng& rng) override;
  Gradient transform(Gradient honest, util::Rng& rng) override;
  bool attacked_last_round() const override { return attacked_; }
  std::string name() const override;
  double attack_probability() const noexcept { return p_attack_; }

 private:
  double p_attack_;
  BehaviourPtr inner_;
  bool attacked_ = false;
};

}  // namespace fifl::fl
