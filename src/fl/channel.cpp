#include "fl/channel.hpp"

#include <stdexcept>

namespace fifl::fl {

Channel::Channel(double drop_prob, util::Rng rng)
    : drop_prob_(drop_prob), rng_(rng) {
  if (drop_prob < 0.0 || drop_prob >= 1.0) {
    throw std::invalid_argument("Channel: drop_prob outside [0,1)");
  }
}

void Channel::transmit(Upload& upload) {
  ++transmitted_;
  if (rng_.bernoulli(drop_prob_)) {
    upload.arrived = false;
    upload.gradient.zero();
    ++dropped_;
  }
}

}  // namespace fifl::fl
