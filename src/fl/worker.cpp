#include "fl/worker.hpp"

#include <stdexcept>

#include "nn/optimizer.hpp"

namespace fifl::fl {

Worker::Worker(WorkerConfig config, data::Dataset shard, BehaviourPtr behaviour,
               const ModelFactory& factory, util::Rng rng)
    : config_(config), behaviour_(std::move(behaviour)), rng_(rng) {
  if (!behaviour_) throw std::invalid_argument("Worker: null behaviour");
  if (config_.local_iterations == 0) {
    throw std::invalid_argument("Worker: local_iterations must be >= 1");
  }
  data_ = behaviour_->prepare_data(shard, rng_);
  data_.validate();
  model_ = factory(rng_);
  if (!model_) throw std::invalid_argument("Worker: factory returned null");
  loader_ = std::make_unique<data::BatchLoader>(
      data_, std::min(config_.batch_size, data_.size()), rng_.split(17));
}

Gradient Worker::compute_local_gradient(std::span<const float> global_params) {
  model_->load_parameters(global_params);
  nn::Sgd optimizer(nn::Sgd::Options{.lr = config_.learning_rate});
  const auto params = model_->parameters();
  data::Batch batch;
  for (std::size_t k = 0; k < config_.local_iterations; ++k) {
    if (!loader_->next(batch)) {
      loader_->start_epoch();
      if (!loader_->next(batch)) {
        throw std::runtime_error("Worker: empty data shard");
      }
    }
    model_->zero_grad();
    const tensor::Tensor logits = model_->forward(batch.images);
    loss_.forward(logits, batch.labels);
    model_->backward(loss_.backward());
    optimizer.step(params);
  }
  // G_i = (θ_t − θ_{t,K}) / η  — the sum of the K step gradients.
  const std::vector<float> after = model_->flatten_parameters();
  Gradient g(global_params.size());
  const auto inv_lr = static_cast<float>(1.0 / config_.learning_rate);
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = (global_params[i] - after[i]) * inv_lr;
  }
  return g;
}

Upload Worker::make_upload(std::span<const float> global_params) {
  Gradient honest = behaviour_->skips_training()
                        ? Gradient(global_params.size())
                        : compute_local_gradient(global_params);
  Upload up;
  up.worker = config_.id;
  up.samples = data_.size();
  up.gradient = behaviour_->transform(std::move(honest), rng_);
  up.ground_truth_attack = behaviour_->attacked_last_round();
  return up;
}

}  // namespace fifl::fl
