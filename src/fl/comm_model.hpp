// Communication model for the three FL architectures of Sec. 3.2.
//
// The paper motivates the polycentric design with communication load: a
// central server must receive N full gradients and broadcast one back
// (bottleneck 2·N·d at one node), decentralized meshes shift load onto
// every device, and polycentric splits the gradient into M slices so each
// server only ever handles N slices of size d/M. This model computes, per
// round, the total bytes moved and the *maximum per-node* load (the
// bottleneck the paper cares about) plus an idealised wall-clock given a
// per-link bandwidth — enough to regenerate the Sec. 3.2 comparison
// quantitatively.
#pragma once

#include <cstddef>
#include <string>

namespace fifl::fl {

struct CommConfig {
  std::size_t workers = 10;        // N
  std::size_t servers = 2;         // M (polycentric only)
  std::size_t gradient_size = 1;   // d, scalars
  std::size_t bytes_per_scalar = 4;
  /// Per-link bandwidth used for the idealised round time.
  double link_bytes_per_second = 12.5e6;  // 100 Mbit/s
};

struct CommCost {
  /// Total bytes crossing the network in one round (uploads + downloads).
  std::size_t total_bytes = 0;
  /// Bytes handled by the busiest single node — the bottleneck.
  std::size_t max_node_bytes = 0;
  /// Idealised round time: every node sends/receives over its own link in
  /// parallel, so the bottleneck node sets the pace.
  double round_seconds = 0.0;
};

/// Centralized (M = 1): the server receives N gradients and broadcasts N
/// copies of the aggregate.
CommCost centralized_cost(const CommConfig& config);

/// Decentralized (M = N): every worker serves one 1/N slice — all-to-all
/// slice exchange, perfectly balanced.
CommCost decentralized_cost(const CommConfig& config);

/// Polycentric (1 <= M <= N): worker i sends slice j to server j; servers
/// broadcast aggregated slices back.
CommCost polycentric_cost(const CommConfig& config);

/// Human-readable architecture label for a server count.
std::string architecture_name(std::size_t servers, std::size_t workers);

}  // namespace fifl::fl
