#include "chain/persistence.hpp"

#include <sstream>
#include <stdexcept>

#include "util/serialize.hpp"

namespace fifl::chain {

namespace {
constexpr std::uint32_t kMagic = 0x4c454447;  // "LEDG"
constexpr std::uint32_t kVersion = 1;
}  // namespace

std::vector<std::uint8_t> export_ledger(const Ledger& ledger) {
  util::ByteWriter writer;
  writer.write_u32(kMagic);
  writer.write_u32(kVersion);
  writer.write_u64(ledger.block_count());
  for (std::size_t b = 0; b < ledger.block_count(); ++b) {
    const Block& block = ledger.block(b);
    writer.write_u64(block.records.size());
    for (const AuditRecord& rec : block.records) {
      writer.write_u8(static_cast<std::uint8_t>(rec.kind));
      writer.write_u64(rec.round);
      writer.write_u32(rec.subject);
      writer.write_u32(rec.executor);
      writer.write_f64(rec.value);
      writer.write_u32(rec.signature.signer);
      writer.write_bytes(std::span<const std::uint8_t>(rec.signature.tag.data(),
                                                       rec.signature.tag.size()));
    }
  }
  return writer.take();
}

void export_ledger_file(const Ledger& ledger, const std::string& path) {
  util::ByteWriter writer;
  const auto bytes = export_ledger(ledger);
  writer.write_bytes(bytes);
  writer.save(path);
}

Ledger import_ledger(std::span<const std::uint8_t> bytes,
                     const KeyRegistry* registry) {
  util::ByteReader reader(bytes);
  if (reader.read_u32() != kMagic) {
    throw util::SerializeError("ledger import: bad magic");
  }
  if (reader.read_u32() != kVersion) {
    throw util::SerializeError("ledger import: unsupported version");
  }
  Ledger ledger(registry);
  const std::uint64_t blocks = reader.read_u64();
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::uint64_t records = reader.read_u64();
    for (std::uint64_t r = 0; r < records; ++r) {
      const auto kind = static_cast<RecordKind>(reader.read_u8());
      if (kind > RecordKind::kServerSelection) {
        throw util::SerializeError("ledger import: unknown record kind");
      }
      const std::uint64_t round = reader.read_u64();
      const NodeId subject = reader.read_u32();
      const NodeId executor = reader.read_u32();
      const double value = reader.read_f64();
      Signature sig;
      sig.signer = reader.read_u32();
      const auto tag = reader.read_bytes(sig.tag.size());
      std::copy(tag.begin(), tag.end(), sig.tag.begin());

      // Re-append via the signing path is impossible (we only have the
      // tag), so rebuild the record and verify its signature explicitly.
      AuditRecord rec;
      rec.kind = kind;
      rec.round = round;
      rec.subject = subject;
      rec.executor = executor;
      rec.value = value;
      rec.signature = sig;
      if (!registry->verify(sig, rec.canonical_payload())) {
        throw std::runtime_error("ledger import: record signature invalid");
      }
      // Append through the ledger's own signing (executor must be
      // registered); the produced signature is identical because HMAC is
      // deterministic — assert that as an integrity cross-check.
      const AuditRecord& appended =
          ledger.append(kind, round, subject, executor, value);
      if (!(appended.signature == sig)) {
        throw std::runtime_error("ledger import: signature mismatch");
      }
    }
    ledger.seal_block();
  }
  if (!ledger.verify_chain()) {
    throw std::runtime_error("ledger import: chain verification failed");
  }
  return ledger;
}

Ledger import_ledger_file(const std::string& path, const KeyRegistry* registry) {
  const auto bytes = util::ByteReader::load(path);
  return import_ledger(bytes, registry);
}

std::string ledger_to_jsonl(const Ledger& ledger) {
  std::ostringstream os;
  for (std::size_t b = 0; b < ledger.block_count(); ++b) {
    const Block& block = ledger.block(b);
    for (const AuditRecord& rec : block.records) {
      os << "{\"block\":" << b << ",\"kind\":\"" << record_kind_name(rec.kind)
         << "\",\"round\":" << rec.round << ",\"subject\":" << rec.subject
         << ",\"executor\":" << rec.executor << ",\"value\":" << rec.value
         << ",\"signer\":" << rec.signature.signer << ",\"tag\":\""
         << to_hex(rec.signature.tag) << "\"}\n";
    }
  }
  return os.str();
}

}  // namespace fifl::chain
