// Merkle tree over record digests: each block commits to its records with
// a Merkle root, and membership proofs let a worker audit "my reputation
// record for round t is in the chain" without replaying the whole block.
#pragma once

#include <vector>

#include "chain/sha256.hpp"

namespace fifl::chain {

struct MerkleProofStep {
  Digest sibling{};
  bool sibling_on_left = false;
};

using MerkleProof = std::vector<MerkleProofStep>;

class MerkleTree {
 public:
  /// Builds a tree over leaf digests. Odd levels duplicate the last node
  /// (Bitcoin-style). An empty tree has the all-zero root.
  explicit MerkleTree(std::vector<Digest> leaves);

  const Digest& root() const noexcept { return root_; }
  std::size_t leaf_count() const noexcept { return leaves_; }

  /// Membership proof for leaf `index`; throws std::out_of_range.
  MerkleProof prove(std::size_t index) const;

  /// Verifies that `leaf` at position `index` is under `root`.
  static bool verify(const Digest& leaf, const MerkleProof& proof,
                     const Digest& root);

  /// The interior-node combinator, H(left || right). Public so tests and
  /// external verifiers can pin the exact tree shape (e.g. the odd-width
  /// duplicate-last-node rule) without reimplementing it.
  static Digest hash_pair(const Digest& left, const Digest& right);

 private:
  std::vector<std::vector<Digest>> levels_;  // levels_[0] = leaves
  Digest root_{};
  std::size_t leaves_ = 0;
};

}  // namespace fifl::chain
