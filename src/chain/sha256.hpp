// From-scratch SHA-256 (FIPS 180-4) used by the audit ledger for block
// hashes, Merkle trees, and HMAC signatures. Streaming interface so large
// records hash without buffering.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace fifl::chain {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(const std::string& s);
  /// Finalises and returns the digest; the object must be reset() before
  /// reuse.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finished_ = false;
};

/// One-shot helpers.
Digest sha256(std::span<const std::uint8_t> data);
Digest sha256(const std::string& s);

/// HMAC-SHA256 (RFC 2104) — the primitive behind our keyed signatures.
Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message);

std::string to_hex(const Digest& d);

}  // namespace fifl::chain
