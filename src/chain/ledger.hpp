// Hash-linked audit ledger ("blockchain" in the paper, Sec. 4/4.5).
//
// Every round the FIFL engine seals one block containing all assessment
// records (detection result, reputation, contribution, reward per worker),
// each signed by the server that produced it. Tampering with any record
// changes its digest, hence the block's Merkle root, hence every later
// block hash — which is exactly the audit property the paper relies on to
// trace and evict manipulating servers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chain/merkle.hpp"
#include "chain/signature.hpp"

namespace fifl::chain {

enum class RecordKind : std::uint8_t {
  kDetection = 0,
  kReputation = 1,
  kContribution = 2,
  kReward = 3,
  kServerSelection = 4,
};

const char* record_kind_name(RecordKind kind);

struct AuditRecord {
  RecordKind kind = RecordKind::kDetection;
  std::uint64_t round = 0;
  NodeId subject = 0;   // the worker being assessed
  NodeId executor = 0;  // the server that produced the value
  double value = 0.0;
  Signature signature;  // executor's signature over canonical_payload()

  /// Canonical byte string that is hashed and signed (excludes signature).
  std::string canonical_payload() const;
  Digest digest() const;
};

struct Block {
  std::uint64_t index = 0;
  Digest previous_hash{};
  Digest merkle_root{};
  std::vector<AuditRecord> records;
  Digest block_hash{};

  Digest compute_hash() const;
};

class Ledger {
 public:
  explicit Ledger(const KeyRegistry* registry);

  /// Creates a record, signs it as `executor`, and stages it for the next
  /// block. Throws if the executor is not registered.
  const AuditRecord& append(RecordKind kind, std::uint64_t round,
                            NodeId subject, NodeId executor, double value);

  /// Seals staged records into a new block; returns its index.
  std::uint64_t seal_block();

  std::size_t block_count() const noexcept { return blocks_.size(); }
  std::size_t pending_records() const noexcept { return pending_.size(); }
  const Block& block(std::size_t i) const { return blocks_.at(i); }

  /// Full-chain integrity check: record signatures, Merkle roots, and the
  /// hash links. Returns false at the first inconsistency.
  bool verify_chain() const;

  /// All sealed records matching the filters (any field may be nullopt).
  std::vector<AuditRecord> query(std::optional<RecordKind> kind,
                                 std::optional<std::uint64_t> round,
                                 std::optional<NodeId> subject) const;

  /// Latest sealed record of `kind` for `subject`, if any.
  std::optional<AuditRecord> latest(RecordKind kind, NodeId subject) const;

  /// Membership proof that sealed record `record_index` of block
  /// `block_index` is committed by that block's Merkle root.
  MerkleProof prove_record(std::size_t block_index,
                           std::size_t record_index) const;

  /// The audit described in Sec. 4.5: given an independently recomputed
  /// value for (kind, round, subject), returns the executor(s) whose
  /// on-chain records deviate by more than `tolerance` — the servers to
  /// evict. An empty result means the chain agrees with the recomputation.
  std::vector<NodeId> audit_value(RecordKind kind, std::uint64_t round,
                                  NodeId subject, double recomputed,
                                  double tolerance = 1e-9) const;

 private:
  const KeyRegistry* registry_;
  std::vector<Block> blocks_;
  std::vector<AuditRecord> pending_;
};

}  // namespace fifl::chain
