// Ledger persistence: export the sealed chain to bytes (or a file) and
// re-import it later. Import re-derives Merkle roots and block hashes from
// the imported records and refuses a chain that does not verify against
// the given registry — a tampered export cannot be smuggled back in.
#pragma once

#include <string>

#include "chain/ledger.hpp"

namespace fifl::chain {

/// Serialize all sealed blocks (pending records are not exported).
std::vector<std::uint8_t> export_ledger(const Ledger& ledger);
void export_ledger_file(const Ledger& ledger, const std::string& path);

/// Rebuild a ledger from exported bytes. Throws util::SerializeError on a
/// malformed stream and std::runtime_error if the rebuilt chain fails
/// verification under `registry`.
Ledger import_ledger(std::span<const std::uint8_t> bytes,
                     const KeyRegistry* registry);
Ledger import_ledger_file(const std::string& path, const KeyRegistry* registry);

/// Human-auditable JSON-lines dump (one record per line) for external
/// tooling; not meant for re-import.
std::string ledger_to_jsonl(const Ledger& ledger);

}  // namespace fifl::chain
