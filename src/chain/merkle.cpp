#include "chain/merkle.hpp"

#include <stdexcept>

namespace fifl::chain {

Digest MerkleTree::hash_pair(const Digest& left, const Digest& right) {
  Sha256 h;
  h.update(std::span<const std::uint8_t>(left.data(), left.size()));
  h.update(std::span<const std::uint8_t>(right.data(), right.size()));
  return h.finish();
}

MerkleTree::MerkleTree(std::vector<Digest> leaves) : leaves_(leaves.size()) {
  if (leaves.empty()) {
    root_.fill(0);
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    std::vector<Digest> level;
    level.reserve((below.size() + 1) / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      const Digest& left = below[i];
      const Digest& right = (i + 1 < below.size()) ? below[i + 1] : below[i];
      level.push_back(hash_pair(left, right));
    }
    levels_.push_back(std::move(level));
  }
  root_ = levels_.back()[0];
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  if (index >= leaves_) throw std::out_of_range("MerkleTree::prove");
  MerkleProof proof;
  std::size_t pos = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    const std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    MerkleProofStep step;
    step.sibling_on_left = (pos % 2 == 1);
    step.sibling = (sibling < level.size()) ? level[sibling] : level[pos];
    proof.push_back(step);
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& leaf, const MerkleProof& proof,
                        const Digest& root) {
  Digest acc = leaf;
  for (const auto& step : proof) {
    acc = step.sibling_on_left ? hash_pair(step.sibling, acc)
                               : hash_pair(acc, step.sibling);
  }
  return acc == root;
}

}  // namespace fifl::chain
