// Replicated audit ledger (Sec. 4/4.5 trust story, made multi-server).
//
// Every server runs an identical deterministic FiflEngine replica, so each
// round every replica seals the *same* block into its local Ledger. This
// layer turns that replication into an explicit commit protocol:
//
//   executor   the round's lead server signs the sealed block's header and
//              proposes it to the followers (net::BlockProposalMsg)
//   follower   recomputes the header from its own replica's block — any
//              field mismatch is Byzantine divergence (a "ledger fork"),
//              a match yields a signed BlockVote back to the executor
//   commit     the executor's signature plus follower votes form a quorum
//              certificate (majority of the M servers); only committed
//              blocks are served to auditors
//
// Workers audit without trusting any single server: an AuditProofBundle
// carries one record, its Merkle inclusion proof, and the *signed* header
// chain up to the tip. verify_audit_proof() recomputes every block hash
// from header fields alone, walks the hash links, and checks the executor
// signature + vote quorum on each header against an independently derived
// KeyRegistry replica — so a server that forges a record must also forge a
// majority of server keys to produce a verifying bundle.
//
// Identity layout matches fifl::net: worker i signs as NodeId i, server j
// as NodeId workers + j (the lead, j = 0, coincides with the engine's task
// publisher id). Keys are derived deterministically from (seed, node), so
// make_registry() on any node reproduces the federation's PKI.
//
// Thread model: one ReplicatedLedger belongs to one server's event-loop
// thread; no internal locking.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/ledger.hpp"

namespace fifl::chain {

/// The consensus view of one sealed block: everything needed to recompute
/// and chain-link its hash, nothing that depends on holding the records.
struct BlockHeader {
  std::uint64_t index = 0;
  Digest previous_hash{};
  Digest merkle_root{};
  Digest block_hash{};

  /// Canonical byte string the executor and voters sign.
  std::string canonical_payload() const;
  /// Recomputes the hash from (index, previous_hash, merkle_root) —
  /// byte-identical to Block::compute_hash, so a header's block_hash is
  /// checkable without the records.
  Digest compute_hash() const;

  bool operator==(const BlockHeader&) const = default;
};

/// Header view of a sealed ledger block.
BlockHeader header_of(const Block& block);

/// A header plus its quorum certificate: the executor's signature and the
/// follower votes, all over canonical_payload().
struct SealedBlockHeader {
  BlockHeader header;
  Signature executor_sig;
  std::vector<Signature> votes;
};

/// Everything a worker needs to verify one of its own records offline:
/// the record, its Merkle path into block `block_index`, and the signed
/// header chain from genesis to the committed tip.
struct AuditProofBundle {
  bool found = false;
  AuditRecord record;
  std::uint64_t block_index = 0;
  std::uint64_t record_index = 0;
  MerkleProof proof;
  /// Absolute chain index of headers[0]. Nonzero means the server elided
  /// the prefix the auditor already verified (proof caching); the auditor
  /// must splice its cached headers back in before verify_audit_proof,
  /// which only accepts genesis-anchored bundles (headers_from == 0).
  std::uint64_t headers_from = 0;
  std::vector<SealedBlockHeader> headers;
};

class ReplicatedLedger {
 public:
  /// Wraps (not owns) the server's local ledger. `self` is this node's
  /// signing identity (workers + server_index in the net layout).
  ReplicatedLedger(const Ledger* ledger, std::uint64_t key_seed,
                   std::uint32_t workers, std::uint32_t servers, NodeId self);

  /// The federation PKI replica: node ids 0..workers+servers-1 plus the
  /// publisher (id == workers), all keyed from `seed`. Workers build one
  /// of these locally to verify proofs against no server's say-so.
  static KeyRegistry make_registry(std::uint64_t seed, std::uint32_t workers,
                                   std::uint32_t servers);

  /// Votes needed for a commit, the executor's own included: a strict
  /// majority of the M servers.
  std::size_t quorum() const noexcept { return servers_ / 2 + 1; }

  NodeId self() const noexcept { return self_; }
  std::uint32_t workers() const noexcept { return workers_; }
  std::uint32_t servers() const noexcept { return servers_; }
  const KeyRegistry& registry() const noexcept { return registry_; }

  /// Executor: signs sealed block `block_index` of the local ledger and
  /// stages it for vote collection. With quorum() == 1 (M = 1) the block
  /// commits immediately. Throws std::out_of_range on an unsealed index.
  const SealedBlockHeader& propose(std::uint64_t block_index);

  /// Follower: checks the proposed header (and the proposed records) field
  /// by field against this replica's own sealed block. A match records the
  /// header as endorsed and returns this node's vote; any mismatch —
  /// including a bad executor signature — returns nullopt: the chain has
  /// forked and the caller must abort. Throws std::out_of_range when the
  /// local replica has not sealed `header.index` yet.
  std::optional<Signature> verify_and_vote(
      const BlockHeader& header, const Signature& executor_sig,
      const std::vector<AuditRecord>& records);

  /// Executor: folds one follower vote into the pending certificate.
  /// Returns false (and changes nothing) for votes that do not verify,
  /// duplicate a recorded signer, name a non-server signer, or reference
  /// an unproposed block; throws std::runtime_error when the vote's
  /// block_hash contradicts the proposed header (a forked follower).
  bool record_vote(std::uint64_t block_index, const Digest& block_hash,
                   const Signature& vote);

  /// True once `block_index` holds a full quorum certificate.
  bool committed(std::uint64_t block_index) const;
  /// Committed blocks form a prefix (votes for block k only arrive after
  /// every replica sealed k, in order); this is the prefix length.
  std::size_t committed_count() const;
  /// The quorum certificate for a proposed block (committed or pending);
  /// nullptr when never proposed. Followers hold their endorsed view here
  /// (their own vote only).
  const SealedBlockHeader* sealed(std::uint64_t block_index) const;

  /// Builds the audit bundle for the newest committed record matching
  /// (kind, round, subject). found == false when no such record exists in
  /// the committed prefix. The header chain always spans the whole
  /// committed prefix, pinning the tip.
  AuditProofBundle prove(RecordKind kind, std::uint64_t round,
                         NodeId subject) const;

  /// Proof-caching variant: ships only headers [from_header, tip) —
  /// clamped to the committed prefix — and records the elision in
  /// bundle.headers_from. With from_header == 0 it is exactly prove().
  AuditProofBundle prove(RecordKind kind, std::uint64_t round, NodeId subject,
                         std::uint64_t from_header) const;

  /// Rejoin path: installs a committed block's quorum certificate that
  /// arrived over ChainSync instead of through propose/vote. The local
  /// ledger must already hold the replayed block at `sealed.header.index`;
  /// the certificate is verified in full (recomputed hash, executor
  /// signature, distinct-signer vote quorum, match against the local
  /// block) and any failure throws std::runtime_error — the sync peer
  /// served a fork or a forged certificate.
  void adopt_committed(const SealedBlockHeader& sealed);

 private:
  bool is_server_id(NodeId node) const noexcept {
    return node >= workers_ && node < workers_ + servers_;
  }

  const Ledger* ledger_;
  KeyRegistry registry_;
  std::uint32_t workers_;
  std::uint32_t servers_;
  NodeId self_;
  /// Proposed/endorsed headers by block index; contiguous from 0 in
  /// practice (one proposal per round, in round order).
  std::vector<SealedBlockHeader> sealed_;
  std::vector<bool> committed_;
};

/// Full offline verification of an audit bundle against an independent
/// registry replica: record signature, Merkle inclusion, recomputed block
/// hashes, hash-chain links, executor signatures and vote quorums on every
/// header. Trusts nothing in the bundle itself.
bool verify_audit_proof(const AuditProofBundle& bundle,
                        const KeyRegistry& registry, std::uint32_t workers,
                        std::uint32_t servers);

}  // namespace fifl::chain
