// Keyed signatures for audit records.
//
// The paper stores "the signatures of servers executing FIFL" so a server
// that manipulates results can be traced and removed (Sec. 4.5). In this
// in-process simulation the registry plays the role of a PKI: each node
// holds a secret key; sign() = HMAC-SHA256(secret, message); verify()
// recomputes through the registry. That gives exactly the accountability
// property the mechanism needs (only the key holder can produce a valid
// tag; anyone with registry access can check it).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "chain/sha256.hpp"

namespace fifl::chain {

using NodeId = std::uint32_t;

struct Signature {
  NodeId signer = 0;
  Digest tag{};

  bool operator==(const Signature&) const = default;
};

class KeyRegistry {
 public:
  /// Creates a registry with deterministic per-node keys derived from seed.
  explicit KeyRegistry(std::uint64_t seed = 0);

  /// Registers (or re-keys) a node; returns its secret-derived public id.
  void register_node(NodeId node);
  bool is_registered(NodeId node) const;

  /// Signs `message` with the node's secret key.
  Signature sign(NodeId node, const std::string& message) const;
  /// True iff the signature verifies for `message` under its signer's key.
  bool verify(const Signature& sig, const std::string& message) const;

 private:
  Digest key_for(NodeId node) const;

  std::uint64_t seed_;
  std::map<NodeId, bool> nodes_;
};

}  // namespace fifl::chain
