#include "chain/ledger.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/scoped_timer.hpp"

namespace fifl::chain {

namespace {
// Chain-layer telemetry: append/seal volume plus seal latency, so the
// audit layer's cost shows up in every metrics snapshot next to training.
struct ChainMetrics {
  obs::Counter& records = obs::MetricsRegistry::global().counter("chain.records_appended");
  obs::Counter& blocks = obs::MetricsRegistry::global().counter("chain.blocks_sealed");
  obs::Histogram& seal_ms = obs::MetricsRegistry::global().histogram("chain.seal_ms");
  static ChainMetrics& get() {
    static ChainMetrics m;
    return m;
  }
};
}  // namespace

const char* record_kind_name(RecordKind kind) {
  switch (kind) {
    case RecordKind::kDetection: return "detection";
    case RecordKind::kReputation: return "reputation";
    case RecordKind::kContribution: return "contribution";
    case RecordKind::kReward: return "reward";
    case RecordKind::kServerSelection: return "server_selection";
  }
  return "?";
}

std::string AuditRecord::canonical_payload() const {
  std::ostringstream os;
  // Hex-exact double encoding so the payload is bit-stable across
  // platforms and re-serialisation.
  char value_hex[32];
  std::snprintf(value_hex, sizeof value_hex, "%a", value);
  os << record_kind_name(kind) << '|' << round << '|' << subject << '|'
     << executor << '|' << value_hex;
  return os.str();
}

Digest AuditRecord::digest() const {
  Sha256 h;
  h.update(canonical_payload());
  h.update(std::span<const std::uint8_t>(signature.tag.data(),
                                         signature.tag.size()));
  return h.finish();
}

Digest Block::compute_hash() const {
  Sha256 h;
  std::ostringstream os;
  os << index << '|';
  h.update(os.str());
  h.update(std::span<const std::uint8_t>(previous_hash.data(),
                                         previous_hash.size()));
  h.update(std::span<const std::uint8_t>(merkle_root.data(),
                                         merkle_root.size()));
  return h.finish();
}

Ledger::Ledger(const KeyRegistry* registry) : registry_(registry) {
  if (!registry_) throw std::invalid_argument("Ledger: null registry");
}

const AuditRecord& Ledger::append(RecordKind kind, std::uint64_t round,
                                  NodeId subject, NodeId executor,
                                  double value) {
  AuditRecord rec;
  rec.kind = kind;
  rec.round = round;
  rec.subject = subject;
  rec.executor = executor;
  rec.value = value;
  rec.signature = registry_->sign(executor, rec.canonical_payload());
  pending_.push_back(rec);
  ChainMetrics::get().records.inc();
  return pending_.back();
}

std::uint64_t Ledger::seal_block() {
  obs::ScopedTimer timer(ChainMetrics::get().seal_ms);
  ChainMetrics::get().blocks.inc();
  Block block;
  block.index = blocks_.size();
  if (!blocks_.empty()) {
    block.previous_hash = blocks_.back().block_hash;
  } else {
    block.previous_hash.fill(0);
  }
  block.records = std::move(pending_);
  pending_.clear();

  std::vector<Digest> leaves;
  leaves.reserve(block.records.size());
  for (const auto& rec : block.records) leaves.push_back(rec.digest());
  block.merkle_root = MerkleTree(std::move(leaves)).root();
  block.block_hash = block.compute_hash();
  blocks_.push_back(std::move(block));
  return blocks_.back().index;
}

bool Ledger::verify_chain() const {
  Digest prev{};
  prev.fill(0);
  for (const auto& block : blocks_) {
    if (block.previous_hash != prev) return false;
    std::vector<Digest> leaves;
    leaves.reserve(block.records.size());
    for (const auto& rec : block.records) {
      if (!registry_->verify(rec.signature, rec.canonical_payload())) {
        return false;
      }
      leaves.push_back(rec.digest());
    }
    if (MerkleTree(std::move(leaves)).root() != block.merkle_root) return false;
    if (block.compute_hash() != block.block_hash) return false;
    prev = block.block_hash;
  }
  return true;
}

std::vector<AuditRecord> Ledger::query(std::optional<RecordKind> kind,
                                       std::optional<std::uint64_t> round,
                                       std::optional<NodeId> subject) const {
  std::vector<AuditRecord> out;
  for (const auto& block : blocks_) {
    for (const auto& rec : block.records) {
      if (kind && rec.kind != *kind) continue;
      if (round && rec.round != *round) continue;
      if (subject && rec.subject != *subject) continue;
      out.push_back(rec);
    }
  }
  return out;
}

std::optional<AuditRecord> Ledger::latest(RecordKind kind,
                                          NodeId subject) const {
  std::optional<AuditRecord> out;
  for (const auto& block : blocks_) {
    for (const auto& rec : block.records) {
      if (rec.kind == kind && rec.subject == subject) out = rec;
    }
  }
  return out;
}

MerkleProof Ledger::prove_record(std::size_t block_index,
                                 std::size_t record_index) const {
  const Block& block = blocks_.at(block_index);
  std::vector<Digest> leaves;
  leaves.reserve(block.records.size());
  for (const auto& rec : block.records) leaves.push_back(rec.digest());
  return MerkleTree(std::move(leaves)).prove(record_index);
}

std::vector<NodeId> Ledger::audit_value(RecordKind kind, std::uint64_t round,
                                        NodeId subject, double recomputed,
                                        double tolerance) const {
  std::vector<NodeId> deviating;
  for (const auto& rec : query(kind, round, subject)) {
    if (std::fabs(rec.value - recomputed) > tolerance) {
      deviating.push_back(rec.executor);
    }
  }
  return deviating;
}

}  // namespace fifl::chain
