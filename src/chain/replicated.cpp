#include "chain/replicated.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace fifl::chain {

namespace {
// Consensus telemetry next to the sealing counters: how many blocks ever
// reached a quorum certificate, and how many follower endorsements were
// folded in.
struct ReplMetrics {
  obs::Counter& committed =
      obs::MetricsRegistry::global().counter("chain.blocks_committed");
  obs::Counter& votes =
      obs::MetricsRegistry::global().counter("chain.votes_recorded");
  static ReplMetrics& get() {
    static ReplMetrics m;
    return m;
  }
};
}  // namespace

std::string BlockHeader::canonical_payload() const {
  std::ostringstream os;
  os << "blockheader|" << index << '|' << to_hex(previous_hash) << '|'
     << to_hex(merkle_root) << '|' << to_hex(block_hash);
  return os.str();
}

Digest BlockHeader::compute_hash() const {
  Sha256 h;
  std::ostringstream os;
  os << index << '|';
  h.update(os.str());
  h.update(std::span<const std::uint8_t>(previous_hash.data(),
                                         previous_hash.size()));
  h.update(std::span<const std::uint8_t>(merkle_root.data(),
                                         merkle_root.size()));
  return h.finish();
}

BlockHeader header_of(const Block& block) {
  BlockHeader h;
  h.index = block.index;
  h.previous_hash = block.previous_hash;
  h.merkle_root = block.merkle_root;
  h.block_hash = block.block_hash;
  return h;
}

ReplicatedLedger::ReplicatedLedger(const Ledger* ledger,
                                   std::uint64_t key_seed,
                                   std::uint32_t workers,
                                   std::uint32_t servers, NodeId self)
    : ledger_(ledger), registry_(make_registry(key_seed, workers, servers)),
      workers_(workers), servers_(servers), self_(self) {
  if (!ledger_) throw std::invalid_argument("ReplicatedLedger: null ledger");
  if (servers_ == 0) {
    throw std::invalid_argument("ReplicatedLedger: servers must be >= 1");
  }
  if (!is_server_id(self_)) {
    throw std::invalid_argument(
        "ReplicatedLedger: self must be a server id (workers..workers+M-1)");
  }
}

KeyRegistry ReplicatedLedger::make_registry(std::uint64_t seed,
                                            std::uint32_t workers,
                                            std::uint32_t servers) {
  // Workers 0..N-1 (record subjects can sign nothing, but the engine
  // registers them, so mirror it), the publisher N, and the servers
  // N..N+M-1 — the publisher and the lead share id N by construction.
  KeyRegistry registry(seed);
  for (NodeId n = 0; n < workers + servers; ++n) registry.register_node(n);
  registry.register_node(workers);  // publisher; no-op when M >= 1
  return registry;
}

const SealedBlockHeader& ReplicatedLedger::propose(std::uint64_t block_index) {
  const Block& block = ledger_->block(static_cast<std::size_t>(block_index));
  if (sealed_.size() <= block_index) {
    sealed_.resize(static_cast<std::size_t>(block_index) + 1);
    committed_.resize(static_cast<std::size_t>(block_index) + 1, false);
  }
  SealedBlockHeader& entry = sealed_[static_cast<std::size_t>(block_index)];
  const BlockHeader header = header_of(block);
  // A takeover executor re-proposing a block this replica already holds
  // committed must not destroy the quorum certificate: until the re-votes
  // arrive the entry would otherwise carry a single signature, and a
  // ChainSync served from that window would (rightly) be rejected as
  // below quorum by the adopter. Carry the old endorsements over — the
  // previous executor's signature becomes an ordinary vote (it signs the
  // same canonical payload) and any prior vote by this node is absorbed
  // into its new executor signature.
  std::vector<Signature> carried;
  if (committed_[static_cast<std::size_t>(block_index)] &&
      entry.header == header) {
    carried = std::move(entry.votes);
    if (entry.executor_sig.signer != self_) {
      carried.push_back(entry.executor_sig);
    }
  }
  entry.header = header;
  entry.executor_sig = registry_.sign(self_, entry.header.canonical_payload());
  entry.votes.clear();
  for (const Signature& sig : carried) {
    if (sig.signer == self_) continue;
    const bool dup = std::any_of(
        entry.votes.begin(), entry.votes.end(),
        [&](const Signature& v) { return v.signer == sig.signer; });
    if (!dup) entry.votes.push_back(sig);
  }
  if (quorum() <= 1) {
    committed_[static_cast<std::size_t>(block_index)] = true;
    ReplMetrics::get().committed.inc();
  }
  return entry;
}

std::optional<Signature> ReplicatedLedger::verify_and_vote(
    const BlockHeader& header, const Signature& executor_sig,
    const std::vector<AuditRecord>& records) {
  const Block& local =
      ledger_->block(static_cast<std::size_t>(header.index));
  // Field-by-field recompute check: the proposed header must equal the
  // header this replica sealed on its own, and the proposed records must
  // be digest-identical to the local block's. Any difference means the
  // executor's chain and ours have forked.
  if (header_of(local) != header) return std::nullopt;
  if (records.size() != local.records.size()) return std::nullopt;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].digest() != local.records[i].digest()) return std::nullopt;
  }
  if (!is_server_id(executor_sig.signer) ||
      !registry_.verify(executor_sig, header.canonical_payload())) {
    return std::nullopt;
  }
  const Signature vote = registry_.sign(self_, header.canonical_payload());
  if (sealed_.size() <= header.index) {
    sealed_.resize(static_cast<std::size_t>(header.index) + 1);
    committed_.resize(static_cast<std::size_t>(header.index) + 1, false);
  }
  // The follower's endorsed view: the header it checked, the executor's
  // certificate seed, and its own vote.
  SealedBlockHeader& entry = sealed_[static_cast<std::size_t>(header.index)];
  entry.header = header;
  entry.executor_sig = executor_sig;
  entry.votes.assign(1, vote);
  ReplMetrics::get().votes.inc();
  // The executor's signature plus this vote may already be a quorum
  // certificate (M <= 3): mark the block committed locally so followers
  // can serve audit proofs and ChainSync without waiting to observe the
  // other followers' votes.
  if (!committed_[static_cast<std::size_t>(header.index)] &&
      1 + entry.votes.size() >= quorum()) {
    committed_[static_cast<std::size_t>(header.index)] = true;
    ReplMetrics::get().committed.inc();
  }
  return vote;
}

bool ReplicatedLedger::record_vote(std::uint64_t block_index,
                                   const Digest& block_hash,
                                   const Signature& vote) {
  if (block_index >= sealed_.size()) return false;
  SealedBlockHeader& entry = sealed_[static_cast<std::size_t>(block_index)];
  if (entry.header.block_hash != block_hash) {
    // A verifying replica can only vote for the hash it recomputed; a
    // contradicting hash means its chain forked from ours.
    throw std::runtime_error(
        "ReplicatedLedger: vote for block " + std::to_string(block_index) +
        " carries a contradicting block hash (ledger fork)");
  }
  if (!is_server_id(vote.signer) || vote.signer == entry.executor_sig.signer) {
    return false;
  }
  if (std::any_of(entry.votes.begin(), entry.votes.end(),
                  [&](const Signature& v) { return v.signer == vote.signer; })) {
    return false;  // duplicate (a redelivered vote), not an error
  }
  if (!registry_.verify(vote, entry.header.canonical_payload())) return false;
  entry.votes.push_back(vote);
  ReplMetrics::get().votes.inc();
  if (!committed_[static_cast<std::size_t>(block_index)] &&
      1 + entry.votes.size() >= quorum()) {
    committed_[static_cast<std::size_t>(block_index)] = true;
    ReplMetrics::get().committed.inc();
  }
  return true;
}

bool ReplicatedLedger::committed(std::uint64_t block_index) const {
  return block_index < committed_.size() &&
         committed_[static_cast<std::size_t>(block_index)];
}

std::size_t ReplicatedLedger::committed_count() const {
  std::size_t n = 0;
  while (n < committed_.size() && committed_[n]) ++n;
  return n;
}

const SealedBlockHeader* ReplicatedLedger::sealed(
    std::uint64_t block_index) const {
  if (block_index >= sealed_.size()) return nullptr;
  return &sealed_[static_cast<std::size_t>(block_index)];
}

AuditProofBundle ReplicatedLedger::prove(RecordKind kind, std::uint64_t round,
                                         NodeId subject) const {
  return prove(kind, round, subject, 0);
}

AuditProofBundle ReplicatedLedger::prove(RecordKind kind, std::uint64_t round,
                                         NodeId subject,
                                         std::uint64_t from_header) const {
  AuditProofBundle bundle;
  const std::size_t tip = committed_count();
  // Newest matching record within the committed prefix.
  for (std::size_t b = tip; b-- > 0;) {
    const Block& block = ledger_->block(b);
    for (std::size_t i = block.records.size(); i-- > 0;) {
      const AuditRecord& rec = block.records[i];
      if (rec.kind == kind && rec.round == round && rec.subject == subject) {
        bundle.found = true;
        bundle.record = rec;
        bundle.block_index = b;
        bundle.record_index = i;
        bundle.proof = ledger_->prove_record(b, i);
        break;
      }
    }
    if (bundle.found) break;
  }
  if (!bundle.found) return bundle;
  // Ship only the headers the auditor has not verified yet; it splices
  // its cached prefix back in before verification.
  const std::size_t from =
      std::min(static_cast<std::size_t>(from_header), tip);
  bundle.headers_from = from;
  bundle.headers.reserve(tip - from);
  for (std::size_t b = from; b < tip; ++b) {
    bundle.headers.push_back(sealed_[b]);
  }
  return bundle;
}

void ReplicatedLedger::adopt_committed(const SealedBlockHeader& sealed) {
  const std::uint64_t index = sealed.header.index;
  // The certificate must be self-consistent and carry a genuine quorum.
  if (sealed.header.compute_hash() != sealed.header.block_hash) {
    throw std::runtime_error(
        "ReplicatedLedger: adopted header's hash does not recompute (block " +
        std::to_string(index) + ")");
  }
  const std::string payload = sealed.header.canonical_payload();
  if (!is_server_id(sealed.executor_sig.signer) ||
      !registry_.verify(sealed.executor_sig, payload)) {
    throw std::runtime_error(
        "ReplicatedLedger: adopted block " + std::to_string(index) +
        " has an invalid executor signature");
  }
  std::vector<NodeId> signers{sealed.executor_sig.signer};
  for (const Signature& vote : sealed.votes) {
    if (!is_server_id(vote.signer) ||
        std::find(signers.begin(), signers.end(), vote.signer) !=
            signers.end() ||
        !registry_.verify(vote, payload)) {
      throw std::runtime_error(
          "ReplicatedLedger: adopted block " + std::to_string(index) +
          " carries an invalid vote");
    }
    signers.push_back(vote.signer);
  }
  if (signers.size() < quorum()) {
    throw std::runtime_error(
        "ReplicatedLedger: adopted block " + std::to_string(index) +
        " is below quorum (" + std::to_string(signers.size()) + " of " +
        std::to_string(quorum()) + ")");
  }
  // The replayed local block must be the very block the quorum certified;
  // a mismatch means the sync peer served a fork.
  const Block& local = ledger_->block(static_cast<std::size_t>(index));
  if (header_of(local) != sealed.header) {
    throw std::runtime_error(
        "ReplicatedLedger: adopted block " + std::to_string(index) +
        " contradicts the replayed local ledger (fork)");
  }
  if (sealed_.size() <= index) {
    sealed_.resize(static_cast<std::size_t>(index) + 1);
    committed_.resize(static_cast<std::size_t>(index) + 1, false);
  }
  sealed_[static_cast<std::size_t>(index)] = sealed;
  if (!committed_[static_cast<std::size_t>(index)]) {
    committed_[static_cast<std::size_t>(index)] = true;
    ReplMetrics::get().committed.inc();
  }
}

bool verify_audit_proof(const AuditProofBundle& bundle,
                        const KeyRegistry& registry, std::uint32_t workers,
                        std::uint32_t servers) {
  if (!bundle.found || servers == 0) return false;
  // Only genesis-anchored chains verify: a cached bundle (headers_from
  // != 0) must have its elided prefix spliced back in by the auditor
  // before it reaches this check.
  if (bundle.headers_from != 0) return false;
  if (bundle.headers.empty() ||
      bundle.block_index >= bundle.headers.size()) {
    return false;
  }
  const std::size_t quorum = servers / 2 + 1;
  const auto is_server = [&](NodeId node) {
    return node >= workers && node < workers + servers;
  };

  // 1. Every header is internally consistent, hash-linked to its
  //    predecessor, and carries a verifying quorum certificate.
  Digest prev{};
  prev.fill(0);
  for (std::size_t i = 0; i < bundle.headers.size(); ++i) {
    const SealedBlockHeader& sealed = bundle.headers[i];
    const BlockHeader& h = sealed.header;
    if (h.index != i) return false;
    if (h.previous_hash != prev) return false;
    if (h.compute_hash() != h.block_hash) return false;
    const std::string payload = h.canonical_payload();
    if (!is_server(sealed.executor_sig.signer) ||
        !registry.verify(sealed.executor_sig, payload)) {
      return false;
    }
    std::vector<NodeId> signers{sealed.executor_sig.signer};
    for (const Signature& vote : sealed.votes) {
      if (!is_server(vote.signer)) return false;
      if (std::find(signers.begin(), signers.end(), vote.signer) !=
          signers.end()) {
        return false;  // a signer may certify a block once
      }
      if (!registry.verify(vote, payload)) return false;
      signers.push_back(vote.signer);
    }
    if (signers.size() < quorum) return false;
    prev = h.block_hash;
  }

  // 2. The record is genuine and committed under its block's Merkle root.
  if (!registry.verify(bundle.record.signature,
                       bundle.record.canonical_payload())) {
    return false;
  }
  const Digest& root =
      bundle.headers[static_cast<std::size_t>(bundle.block_index)]
          .header.merkle_root;
  return MerkleTree::verify(bundle.record.digest(), bundle.proof, root);
}

}  // namespace fifl::chain
