#include "chain/signature.hpp"

#include <stdexcept>

namespace fifl::chain {

KeyRegistry::KeyRegistry(std::uint64_t seed) : seed_(seed) {}

void KeyRegistry::register_node(NodeId node) { nodes_[node] = true; }

bool KeyRegistry::is_registered(NodeId node) const {
  return nodes_.contains(node);
}

Digest KeyRegistry::key_for(NodeId node) const {
  // Secret key = SHA256(seed || node). Deterministic for reproducibility,
  // but unknowable to other simulated nodes (they never see `seed_`).
  std::string material = "fifl-key:";
  material += std::to_string(seed_);
  material += ':';
  material += std::to_string(node);
  return sha256(material);
}

Signature KeyRegistry::sign(NodeId node, const std::string& message) const {
  if (!is_registered(node)) {
    throw std::invalid_argument("KeyRegistry::sign: unregistered node");
  }
  const Digest key = key_for(node);
  Signature sig;
  sig.signer = node;
  sig.tag = hmac_sha256(
      std::span<const std::uint8_t>(key.data(), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(message.data()),
          message.size()));
  return sig;
}

bool KeyRegistry::verify(const Signature& sig, const std::string& message) const {
  if (!is_registered(sig.signer)) return false;
  const Digest key = key_for(sig.signer);
  const Digest expected = hmac_sha256(
      std::span<const std::uint8_t>(key.data(), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(message.data()),
          message.size()));
  return expected == sig.tag;
}

}  // namespace fifl::chain
