#!/usr/bin/env bash
# Sanitizer matrix for the fifl tree. Each lane configures an out-of-tree
# build with -fsanitize=<kind> and runs the appropriate test selection:
#
#   address    full ctest suite under ASan (heap/stack/UAF bugs anywhere)
#   undefined  full ctest suite under UBSan (signed overflow, misaligned
#              loads, invalid enum casts in the codec paths)
#   thread     ctest -L "net|chain|obs" under TSan (the net stack is all
#              threads and condition variables, and the chain suites
#              cover the replicated-ledger commit protocol those threads
#              drive; the net label also pulls in the lead-failover
#              suite — election, executor rotation, rejoin-by-replay —
#              whose cross-thread handoffs are exactly what TSan is for;
#              the obs label covers the metrics/span/flight-recorder
#              sinks that every net thread writes into, i.e. the mutexes
#              the R6-R9 lint rules and the Clang thread-safety
#              annotations now document; other single-threaded suites
#              add nothing)
#   matrix     all three lanes in sequence (address, undefined, thread)
#
# Usage: scripts/ci_sanitize.sh [lane]
#   lane: thread (default, backward compatible with the sanitize_net
#         target) | address | undefined | matrix
#   BUILD_DIR overrides the build tree (default: build-<lane>); ignored
#   for matrix, which always uses build-<lane> per lane.
#
# Also reachable as build targets: `cmake --build build --target
# sanitize_net` (thread lane) and `--target sanitize_all` (matrix).
set -euo pipefail

LANE="${1:-thread}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

run_lane() {
  local sanitizer="$1"
  local build_dir="${2:-$ROOT/build-$sanitizer}"

  echo "== configure ($sanitizer sanitizer) -> $build_dir =="
  # Bench/examples stay off: the full-suite lanes cover every gtest binary
  # plus the lint gate, and sanitized google-benchmark links add minutes
  # of build for no extra coverage.
  cmake -B "$build_dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFIFL_SANITIZE="$sanitizer" \
    -DFIFL_BUILD_BENCH=OFF \
    -DFIFL_BUILD_EXAMPLES=OFF

  echo "== build ($sanitizer) =="
  cmake --build "$build_dir" -j "$(nproc)"

  # Sanitized event loops run several times slower than native; scale the
  # per-test timeouts up rather than loosening them for everyone.
  case "$sanitizer" in
    thread)
      echo '== ctest -L "net|chain|obs" (thread) =='
      ctest --test-dir "$build_dir" -L "net|chain|obs" --output-on-failure \
        --timeout 1200 -j 2
      ;;
    address|undefined)
      echo "== full ctest ($sanitizer) =="
      ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1" \
        UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ctest --test-dir "$build_dir" --output-on-failure \
        --timeout 1200 -j "$(nproc)"
      ;;
  esac
  echo "ci_sanitize: OK ($sanitizer)"
}

case "$LANE" in
  thread|address|undefined)
    run_lane "$LANE" "${BUILD_DIR:-$ROOT/build-$LANE}"
    ;;
  matrix)
    for sanitizer in address undefined thread; do
      run_lane "$sanitizer"
    done
    echo "ci_sanitize: OK (matrix)"
    ;;
  *)
    echo "ci_sanitize: unknown lane '$LANE' (want thread|address|undefined|matrix)" >&2
    exit 2
    ;;
esac
