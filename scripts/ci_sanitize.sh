#!/usr/bin/env bash
# Sanitizer lane for the fifl::net runtime: configures an out-of-tree
# build with -fsanitize=<kind> (thread by default — the net stack is all
# threads and condition variables), builds it, and runs the net-labelled
# tests under it. Any data race / lock-order inversion TSan spots in the
# quorum, liveness, or fault-injection paths fails the lane.
#
# Usage: scripts/ci_sanitize.sh [sanitizer]
#   sanitizer: thread (default) | address | undefined
#   BUILD_DIR overrides the build tree (default: build-<sanitizer>).
#
# Also reachable as an opt-in build target: `cmake --build build
# --target sanitize_net` shells out to this script.
set -euo pipefail

SANITIZER="${1:-thread}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build-$SANITIZER}"

case "$SANITIZER" in
  thread|address|undefined) ;;
  *)
    echo "ci_sanitize: unknown sanitizer '$SANITIZER'" >&2
    exit 2
    ;;
esac

echo "== configure ($SANITIZER sanitizer) -> $BUILD_DIR =="
cmake -B "$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFIFL_SANITIZE="$SANITIZER" \
  -DFIFL_BUILD_BENCH=OFF \
  -DFIFL_BUILD_EXAMPLES=OFF

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest -L net ($SANITIZER) =="
# Sanitized event loops run several times slower than native; scale the
# per-test timeouts up rather than loosening them for everyone.
ctest --test-dir "$BUILD_DIR" -L net --output-on-failure \
  --timeout 1200 -j 2

echo "ci_sanitize: OK ($SANITIZER)"
