#!/usr/bin/env bash
# Static-analysis entry point: everything that catches bugs without
# running the programs.
#
#   1. fifl-lint        repo determinism/hygiene rules R1-R5 (DESIGN.md
#                       "Determinism invariants") plus the concurrency
#                       rules R6-R9 (DESIGN.md "Concurrency discipline");
#                       builds the linter if needed, then lints the tree
#                       including per-header compile checks, and audits
#                       every waiver for a justification.
#   2. FIFL_WERROR      the default build already carries
#                       -Wall -Wextra -Wpedantic -Wshadow -Wconversion
#                       -Wdouble-promotion -Werror; this script asserts a
#                       from-scratch configure+build stays warning-clean.
#   3. clang-tidy       bugprone-*/performance-*/naming profile from
#                       .clang-tidy, over src/ and tools/ — skipped with a
#                       notice when clang-tidy is not installed.
#   4. thread-safety    Clang Thread Safety Analysis (-Werror=thread-safety)
#                       over the annotated net/obs/util sources; the
#                       FIFL_GUARDED_BY/FIFL_REQUIRES macros in
#                       src/util/thread_annotations.hpp expand to real
#                       attributes only under clang, so this lane is
#                       skipped with a notice when clang++ is not
#                       installed (gcc builds see no-ops).
#
# Usage: scripts/ci_static.sh [build-dir]
#   build-dir defaults to build-static (out of tree, left around for
#   incremental reruns).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build-static}"

echo "== configure (FIFL_WERROR=ON) -> $BUILD_DIR =="
cmake -B "$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFIFL_WERROR=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "== warnings-as-errors build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== fifl-lint =="
CXX_BIN="$(grep -m1 'CMAKE_CXX_COMPILER:' "$BUILD_DIR/CMakeCache.txt" \
  | cut -d= -f2)"
"$BUILD_DIR/tools/lint/fifl-lint" --root "$ROOT" --cxx "${CXX_BIN:-c++}" \
  --json "$BUILD_DIR/fifl_lint_report.json"

echo "== fifl-lint --audit-waivers =="
"$BUILD_DIR/tools/lint/fifl-lint" --root "$ROOT" --no-headers --audit-waivers

if command -v clang-tidy > /dev/null 2>&1; then
  echo "== clang-tidy =="
  # Headers are covered transitively via HeaderFilterRegex.
  find "$ROOT/src" "$ROOT/tools" -name '*.cpp' -print0 \
    | xargs -0 -P "$(nproc)" -n 8 clang-tidy -p "$BUILD_DIR" --quiet
else
  echo "ci_static: clang-tidy not installed, lane skipped"
fi

if command -v clang++ > /dev/null 2>&1; then
  echo "== clang thread-safety analysis =="
  # Syntax-only pass: the TSA attributes live in headers, so compiling
  # the .cpp files pulls every annotated class through the analysis.
  find "$ROOT/src/net" "$ROOT/src/obs" "$ROOT/src/util" -name '*.cpp' \
    -print0 | xargs -0 -n 1 clang++ -std=c++20 -fsyntax-only \
    -I "$ROOT/src" -Wthread-safety -Werror=thread-safety
  echo "ci_static: thread-safety lane clean"
else
  echo "ci_static: clang++ not installed, thread-safety lane skipped"
fi

echo "ci_static: OK"
