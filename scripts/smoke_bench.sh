#!/usr/bin/env sh
# Smoke test for the bench artifact pipeline: runs one figure bench and
# one micro bench at minimal fidelity and asserts that
#   - each emits a parseable BENCH_<name>.json to FIFL_BENCH_OUTDIR,
#   - the figure bench streams one JSONL trace record per round to
#     FIFL_TRACE_OUT.
#
# It also smokes the fifl::net runtime: if the polycentric_cluster
# example binary exists (examples-bin-dir, 2nd arg), a short loopback
# cluster run must complete and its trace must carry the "net" block.
#
# The wire-bandwidth legs (ext_net_cluster, micro_codec) write their
# BENCH_*.json into a *persistent* outdir — FIFL_BENCH_OUTDIR if set,
# else <bench-bin-dir>/bench_out — so bytes/round and codec-throughput
# baselines accumulate in the build tree instead of vanishing with the
# scratch dir.
#
# Usage: smoke_bench.sh [bench-bin-dir] [examples-bin-dir]
#   bench-bin-dir defaults to ./build/bench; examples-bin-dir to its
#   sibling ../examples (skipped when absent). Registered as a ctest
#   (bench_smoke) so `ctest` exercises the whole artifact path.
set -eu

BIN_DIR="${1:-build/bench}"
EXAMPLES_DIR="${2:-$BIN_DIR/../examples}"
ROUNDS="${FIFL_BENCH_ROUNDS:-3}"
BENCH_OUTDIR="${FIFL_BENCH_OUTDIR:-$BIN_DIR/bench_out}"

for bin in fig11_reputation micro_metrics_overhead ext_net_cluster \
           micro_codec micro_chain_throughput; do
  if [ ! -x "$BIN_DIR/$bin" ]; then
    echo "smoke_bench: missing binary $BIN_DIR/$bin" >&2
    exit 1
  fi
done

OUTDIR="$(mktemp -d)"
trap 'rm -rf "$OUTDIR"' EXIT
mkdir -p "$BENCH_OUTDIR"

echo "== fig11_reputation (FIFL_BENCH_ROUNDS=$ROUNDS) =="
FIFL_BENCH_ROUNDS="$ROUNDS" FIFL_BENCH_OUTDIR="$OUTDIR" \
  FIFL_TRACE_OUT="$OUTDIR/trace.jsonl" \
  "$BIN_DIR/fig11_reputation" > "$OUTDIR/fig11.log"

echo "== micro_metrics_overhead =="
FIFL_BENCH_OUTDIR="$OUTDIR" \
  "$BIN_DIR/micro_metrics_overhead" --benchmark_min_time=0.01 \
  > "$OUTDIR/micro.log"

echo "== ext_net_cluster (FIFL_BENCH_ROUNDS=$ROUNDS, outdir $BENCH_OUTDIR) =="
# Wire tracing on: every node streams node_<n>.trace.jsonl into the
# scratch dir, which fifl-tracecat must merge and validate below.
FIFL_BENCH_ROUNDS="$ROUNDS" FIFL_BENCH_OUTDIR="$BENCH_OUTDIR" \
  FIFL_TRACE_DIR="$OUTDIR/wire_trace" \
  "$BIN_DIR/ext_net_cluster" > "$OUTDIR/ext_net_cluster.log"

echo "== micro_codec (outdir $BENCH_OUTDIR) =="
FIFL_BENCH_OUTDIR="$BENCH_OUTDIR" \
  "$BIN_DIR/micro_codec" --benchmark_min_time=0.01 \
  > "$OUTDIR/micro_codec.log"

echo "== micro_chain_throughput (outdir $BENCH_OUTDIR) =="
# Audit-chain baseline: records/sec through the quorum-seal protocol and
# the audit-proof round-trip latency accumulate next to the bandwidth
# numbers.
FIFL_BENCH_OUTDIR="$BENCH_OUTDIR" \
  "$BIN_DIR/micro_chain_throughput" --benchmark_min_time=0.01 \
  > "$OUTDIR/micro_chain.log"

fail() {
  echo "smoke_bench: $1" >&2
  exit 1
}

for json in BENCH_fig11_reputation.json BENCH_micro_metrics_overhead.json; do
  [ -s "$OUTDIR/$json" ] || fail "$json missing or empty"
done
# The bandwidth baselines must land in the persistent outdir.
for json in BENCH_ext_net_cluster.json BENCH_ext_net_compression.json \
            BENCH_micro_codec.json BENCH_micro_chain_throughput.json; do
  [ -s "$BENCH_OUTDIR/$json" ] || fail "$json missing or empty"
done
[ -s "$BENCH_OUTDIR/ext_net_compression.csv" ] || \
  fail "ext_net_compression.csv not written"
[ -s "$OUTDIR/fig11_reputation.csv" ] || fail "fig11_reputation.csv not written"
[ -s "$OUTDIR/trace.jsonl" ] || fail "trace.jsonl not written"

TRACE_LINES="$(wc -l < "$OUTDIR/trace.jsonl")"
[ "$TRACE_LINES" -eq "$ROUNDS" ] || \
  fail "expected $ROUNDS trace records, got $TRACE_LINES"

# Merged-timeline gate: the traced ext_net_cluster run must merge into
# schema-valid Chrome trace JSON with cross-node flows in every round.
TRACECAT="$BIN_DIR/../tools/trace/fifl-tracecat"
if [ -x "$TRACECAT" ]; then
  echo "== fifl-tracecat (merge + validate) =="
  ls "$OUTDIR/wire_trace"/node_*.trace.jsonl > /dev/null 2>&1 || \
    fail "traced cluster run left no node_*.trace.jsonl files"
  "$TRACECAT" "$OUTDIR/wire_trace" -o "$OUTDIR/wire_trace/merged.json" || \
    fail "fifl-tracecat merge failed"
  "$TRACECAT" --validate "$OUTDIR/wire_trace/merged.json" \
    --min-flows-per-round 1 || fail "fifl-tracecat --validate failed"
else
  echo "smoke_bench: fifl-tracecat not built, merge gate skipped"
fi

if command -v python3 > /dev/null 2>&1; then
  python3 - "$OUTDIR" "$ROUNDS" "$BENCH_OUTDIR" <<'EOF'
import json, sys, pathlib
outdir, rounds = pathlib.Path(sys.argv[1]), int(sys.argv[2])
benchdir = pathlib.Path(sys.argv[3])

fig = json.loads((outdir / "BENCH_fig11_reputation.json").read_text())
for key in ("bench", "wall_seconds", "table", "metrics"):
    assert key in fig, f"BENCH_fig11_reputation.json missing '{key}'"
assert fig["bench"] == "fig11_reputation"
assert fig["table"]["rows"] > 0 and fig["table"]["checksum"].startswith("0x")

micro = json.loads((outdir / "BENCH_micro_metrics_overhead.json").read_text())
assert micro["benchmarks"], "micro bench json has no benchmark entries"

codec = json.loads((benchdir / "BENCH_micro_codec.json").read_text())
assert codec["benchmarks"], "micro_codec json has no benchmark entries"

chain = json.loads((benchdir / "BENCH_micro_chain_throughput.json").read_text())
seal = [b for b in chain["benchmarks"] if b["name"].startswith("BM_QuorumSeal")]
assert seal, "micro_chain_throughput json has no BM_QuorumSeal entries"
for b in seal:
    assert b.get("items_per_second", 0) > 0, \
        f"{b['name']} missing records/sec (items_per_second)"
    assert b.get("real_time", 0) > 0, f"{b['name']} missing seal latency"
assert any(b["name"].startswith("BM_AuditProveAndVerify")
           for b in chain["benchmarks"]), \
    "micro_chain_throughput json has no BM_AuditProveAndVerify entries"
proof = [b for b in chain["benchmarks"]
         if b["name"].startswith("BM_AuditProofBytes")]
assert proof, "micro_chain_throughput json has no BM_AuditProofBytes entries"
for b in proof:
    full = b.get("full_bytes", 0)
    cached = b.get("cached_bytes", 0)
    assert full > 0 and cached > 0, f"{b['name']} missing proof byte counters"
    assert cached < full, \
        f"{b['name']}: cached proof ({cached}B) not smaller than full ({full}B)"

net = json.loads((benchdir / "BENCH_ext_net_cluster.json").read_text())
per_type = [k for k in net["metrics"]["counters"]
            if k.startswith("net.bytes_tx.")]
assert "net.bytes_tx.gradient_upload" in per_type, \
    f"per-type byte counters missing from metrics snapshot: {per_type}"
assert "net.bytes_rx.gradient_upload" in net["metrics"]["counters"], \
    "per-type rx byte counters missing from metrics snapshot"
hists = net["metrics"]["histograms"]
for phase in ("broadcast", "collect", "assess"):
    h = hists.get(f"net.phase.{phase}_ms")
    assert h and h["count"] > 0, f"net.phase.{phase}_ms histogram missing"
    for q in ("p50", "p90", "p99"):
        assert q in h, f"net.phase.{phase}_ms missing {q}"
handle = [k for k in hists if k.startswith("net.handle_ms.")]
assert handle and any(hists[k]["count"] > 0 for k in handle), \
    f"per-message-type handle histograms missing: {handle}"

comp = json.loads((benchdir / "BENCH_ext_net_compression.json").read_text())
assert comp["table"]["rows"] == 3, "codec sweep should have 3 legs"

traces = [json.loads(l) for l in (outdir / "trace.jsonl").read_text().splitlines()]
assert len(traces) == rounds
for i, t in enumerate(traces):
    assert t["round"] == i
    assert set(t["phases_ms"]) == {"local_train", "channel", "detect",
                                   "aggregate", "ledger"}
    for w in t["workers"]:
        for field in ("id", "arrived", "accepted", "uncertain",
                      "detection_score", "reputation", "contribution",
                      "reward"):
            assert field in w, f"worker trace missing '{field}'"
print("smoke_bench: python checks passed")
EOF
else
  echo "smoke_bench: python3 unavailable, skipped JSON deep checks"
fi

if [ -x "$EXAMPLES_DIR/polycentric_cluster" ]; then
  echo "== polycentric_cluster (loopback, $ROUNDS rounds) =="
  FIFL_TRACE_OUT="$OUTDIR/net_trace.jsonl" \
    "$EXAMPLES_DIR/polycentric_cluster" --rounds="$ROUNDS" --loopback=1 \
    > "$OUTDIR/cluster.log"
  grep -q "final model" "$OUTDIR/cluster.log" || \
    fail "polycentric_cluster did not finish"
  NET_LINES="$(wc -l < "$OUTDIR/net_trace.jsonl")"
  [ "$NET_LINES" -eq "$ROUNDS" ] || \
    fail "expected $ROUNDS net trace records, got $NET_LINES"
  grep -q '"net":{"bytes_tx"' "$OUTDIR/net_trace.jsonl" || \
    fail "net trace records missing the \"net\" block"
  grep -q '"bytes_rx_by_type"' "$OUTDIR/net_trace.jsonl" || \
    fail "net trace records missing bytes_rx_by_type"
else
  echo "smoke_bench: polycentric_cluster not built, net smoke skipped"
fi

echo "smoke_bench: OK"
